"""Figure 11: multiple query instances on one data source node.

Every benchmark here is a thin assertion shim over a scenario config under
``configs/`` (see ``benchmarks/bench_fig10_scaling.py`` for the pattern);
the historical ``FIG11_*`` environment knobs still work as deprecated
aliases (:mod:`repro.scenarios.knobs`).

Paper shape: co-located S2SProbe instances (fixed load factors sized for the
per-query CPU demand of 55%/30%/5% at 10x/5x/1x input scaling) do not
interfere until the node's cores are exhausted; aggregate throughput then
saturates — at roughly 2 queries on one core and 3 on two cores at 10x, 4 and
6 at 5x, and 15 and 25 with no scaling.

Two paths reproduce the figure: the closed-form analytic mode scales one
frozen-plan single-source run per count, and the simulated mode actually
co-locates the instances on one stream processor
(``CoLocatedBlockExecutor``), so shared-link and SP-compute contention are
measured.  ``test_fig11_colocated`` runs the configured ``scenario.mode``
and, in comparison mode, enforces the below-knee agreement.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_table
from repro.scenarios import ScenarioRunner, load_scenario
from repro.scenarios.knobs import FIG11_COLOCATED_ALIASES, deprecated_env_overrides

from .conftest import CONFIG_DIR, write_result

#: The analytic Fig. 11 settings, one scenario config per subfigure; each is
#: run at one and two source-node cores to show the saturation knee move.
ANALYTIC_CONFIGS = ("fig11a_10x", "fig11b_5x", "fig11c_1x")


def run_setting(name):
    results = {}
    for cores in (1, 2):
        spec = load_scenario(
            CONFIG_DIR / f"{name}.toml", overrides=[f"fleet.cores={cores}"]
        )
        results[cores] = ScenarioRunner().run(spec).raw
    return results


@pytest.mark.parametrize("name", ANALYTIC_CONFIGS)
def test_fig11_multi_query(benchmark, name):
    results = benchmark.pedantic(run_setting, args=(name,), rounds=1, iterations=1)

    query_counts = [int(row["queries"]) for row in results[1]]
    rows = []
    for i, count in enumerate(query_counts):
        rows.append(
            [
                count,
                results[1][i]["aggregate_throughput_mbps"],
                results[2][i]["aggregate_throughput_mbps"],
                results[1][i]["per_query_budget"],
                results[2][i]["per_query_budget"],
            ]
        )
    table = format_table(
        ["queries", "1-core agg Mbps", "2-core agg Mbps", "1-core budget/q", "2-core budget/q"],
        rows,
    )
    table += (
        f"\n\nper-query CPU demand: {results[1][0]['per_query_demand']:.2f} of a core"
    )
    write_result(name, table)

    one_core = [r["aggregate_throughput_mbps"] for r in results[1]]
    two_core = [r["aggregate_throughput_mbps"] for r in results[2]]
    # Two cores sustain at least as much aggregate throughput as one core, and
    # strictly more once the single core is saturated.
    assert all(b >= a * 0.95 for a, b in zip(one_core, two_core))
    assert two_core[-1] > one_core[-1]
    # Aggregate throughput saturates: the last step on one core adds less per
    # additional query than the first step did.
    if len(one_core) >= 3:
        first_gain = (one_core[1] - one_core[0]) / (query_counts[1] - query_counts[0])
        last_gain = (one_core[-1] - one_core[-2]) / (query_counts[-1] - query_counts[-2])
        assert last_gain <= first_gain + 1e-6


def test_fig11_colocated(benchmark):
    """True co-located multi-query executor vs the closed-form cross-check."""
    spec = load_scenario(
        CONFIG_DIR / "fig11_colocated.toml",
        overrides=deprecated_env_overrides(FIG11_COLOCATED_ALIASES),
    )
    result = benchmark.pedantic(
        ScenarioRunner().run, args=(spec,), rounds=1, iterations=1
    )
    write_result("fig11_colocated", result.table, data=result.bench_payload())

    rows = result.raw
    demand = rows[0]["per_query_demand"]
    if spec.mode == "comparison":
        # Below the source-CPU saturation knee (sum of demands within the
        # node's cores) the co-located executor must agree with the analytic
        # extrapolation (acceptance criterion: within 15%).
        for row in rows:
            if row["queries"] * demand <= row["cores"] + 1e-9:
                assert 0.85 <= row["ratio"] <= 1.15, row
    if spec.mode in ("simulated", "comparison"):
        # Past the knee co-location degrades per-query throughput: starved
        # instances fall below the unconstrained single-instance rate.  The
        # baseline only exists when the configured counts include a
        # below-knee point (sweep.queries may start past the knee).
        baseline = rows[0]
        if baseline["queries"] * demand <= baseline["cores"] + 1e-9:
            unconstrained = baseline["per_query_throughput_mbps"]
            starved = [
                row for row in rows if row["queries"] * demand > row["cores"] * 1.5
            ]
            for row in starved:
                assert row["per_query_throughput_mbps"] < 0.95 * unconstrained, row
