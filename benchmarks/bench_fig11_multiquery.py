"""Figure 11: multiple query instances on one data source node.

Paper shape: co-located S2SProbe instances (fixed load factors sized for the
per-query CPU demand of 55%/30%/5% at 10x/5x/1x input scaling) do not
interfere until the node's cores are exhausted; aggregate throughput then
saturates — at roughly 2 queries on one core and 3 on two cores at 10x, 4 and
6 at 5x, and 15 and 25 with no scaling.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import multi_query_sweep
from repro.analysis.reporting import format_table

from .conftest import write_result

RECORDS_PER_EPOCH = 500
SETTINGS = {
    "fig11a_10x": dict(rate_scale=1.0, query_counts=(1, 2, 3, 4, 5)),
    "fig11b_5x": dict(rate_scale=0.5, query_counts=(1, 2, 4, 6, 8)),
    "fig11c_1x": dict(rate_scale=0.1, query_counts=(1, 5, 10, 15, 20, 25)),
}


def run_setting(name):
    params = SETTINGS[name]
    results = {}
    for cores in (1, 2):
        results[cores] = multi_query_sweep(
            rate_scale=params["rate_scale"],
            cores=cores,
            query_counts=params["query_counts"],
            records_per_epoch=RECORDS_PER_EPOCH,
            num_epochs=30,
            warmup_epochs=12,
        )
    return results


@pytest.mark.parametrize("name", list(SETTINGS))
def test_fig11_multi_query(benchmark, name):
    results = benchmark.pedantic(run_setting, args=(name,), rounds=1, iterations=1)

    query_counts = SETTINGS[name]["query_counts"]
    rows = []
    for i, count in enumerate(query_counts):
        rows.append(
            [
                count,
                results[1][i]["aggregate_throughput_mbps"],
                results[2][i]["aggregate_throughput_mbps"],
                results[1][i]["per_query_budget"],
                results[2][i]["per_query_budget"],
            ]
        )
    table = format_table(
        ["queries", "1-core agg Mbps", "2-core agg Mbps", "1-core budget/q", "2-core budget/q"],
        rows,
    )
    table += (
        f"\n\nper-query CPU demand: {results[1][0]['per_query_demand']:.2f} of a core"
    )
    write_result(name, table)

    one_core = [r["aggregate_throughput_mbps"] for r in results[1]]
    two_core = [r["aggregate_throughput_mbps"] for r in results[2]]
    # Two cores sustain at least as much aggregate throughput as one core, and
    # strictly more once the single core is saturated.
    assert all(b >= a * 0.95 for a, b in zip(one_core, two_core))
    assert two_core[-1] > one_core[-1]
    # Aggregate throughput saturates: the last step on one core adds less per
    # additional query than the first step did.
    if len(one_core) >= 3:
        first_gain = (one_core[1] - one_core[0]) / (query_counts[1] - query_counts[0])
        last_gain = (one_core[-1] - one_core[-2]) / (query_counts[-1] - query_counts[-2])
        assert last_gain <= first_gain + 1e-6
