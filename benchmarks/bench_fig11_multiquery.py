"""Figure 11: multiple query instances on one data source node.

Paper shape: co-located S2SProbe instances (fixed load factors sized for the
per-query CPU demand of 55%/30%/5% at 10x/5x/1x input scaling) do not
interfere until the node's cores are exhausted; aggregate throughput then
saturates — at roughly 2 queries on one core and 3 on two cores at 10x, 4 and
6 at 5x, and 15 and 25 with no scaling.

Two paths reproduce the figure: the closed-form ``multi_query_sweep`` scales
one frozen-plan single-source run per count, and
``multi_query_colocation_sweep`` actually co-locates the instances on one
stream processor (``CoLocatedBlockExecutor``), so shared-link and SP-compute
contention are measured.  ``test_fig11_colocated`` runs the configured
``FIG11_MODE`` and, in comparison mode, enforces the below-knee agreement.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import (
    multi_query_colocation_sweep,
    multi_query_sweep,
)
from repro.analysis.reporting import format_table

from .conftest import write_result

RECORDS_PER_EPOCH = 500
SETTINGS = {
    "fig11a_10x": dict(rate_scale=1.0, query_counts=(1, 2, 3, 4, 5)),
    "fig11b_5x": dict(rate_scale=0.5, query_counts=(1, 2, 4, 6, 8)),
    "fig11c_1x": dict(rate_scale=0.1, query_counts=(1, 5, 10, 15, 20, 25)),
}

#: Query counts for the co-located (true multi-query) sweep.  Override with
#: e.g. ``FIG11_QUERIES=1,2 pytest benchmarks/bench_fig11_multiquery.py``;
#: the default keeps the full-fidelity co-location small enough for CI.
COLOCATED_QUERIES = tuple(
    int(part) for part in os.environ.get("FIG11_QUERIES", "1,2,3,4").split(",")
)
COLOCATED_MODE = os.environ.get("FIG11_MODE", "comparison")
#: Record representation for the simulated path (bit-identical metrics).
COLOCATED_RECORD_MODE = os.environ.get("FIG11_RECORD_MODE", "batched")
COLOCATED_EPOCHS = int(os.environ.get("FIG11_EPOCHS", "25"))
COLOCATED_RECORDS_PER_EPOCH = int(os.environ.get("FIG11_RECORDS", "200"))


def run_setting(name):
    params = SETTINGS[name]
    results = {}
    for cores in (1, 2):
        results[cores] = multi_query_sweep(
            rate_scale=params["rate_scale"],
            cores=cores,
            query_counts=params["query_counts"],
            records_per_epoch=RECORDS_PER_EPOCH,
            num_epochs=30,
            warmup_epochs=12,
        )
    return results


@pytest.mark.parametrize("name", list(SETTINGS))
def test_fig11_multi_query(benchmark, name):
    results = benchmark.pedantic(run_setting, args=(name,), rounds=1, iterations=1)

    query_counts = SETTINGS[name]["query_counts"]
    rows = []
    for i, count in enumerate(query_counts):
        rows.append(
            [
                count,
                results[1][i]["aggregate_throughput_mbps"],
                results[2][i]["aggregate_throughput_mbps"],
                results[1][i]["per_query_budget"],
                results[2][i]["per_query_budget"],
            ]
        )
    table = format_table(
        ["queries", "1-core agg Mbps", "2-core agg Mbps", "1-core budget/q", "2-core budget/q"],
        rows,
    )
    table += (
        f"\n\nper-query CPU demand: {results[1][0]['per_query_demand']:.2f} of a core"
    )
    write_result(name, table)

    one_core = [r["aggregate_throughput_mbps"] for r in results[1]]
    two_core = [r["aggregate_throughput_mbps"] for r in results[2]]
    # Two cores sustain at least as much aggregate throughput as one core, and
    # strictly more once the single core is saturated.
    assert all(b >= a * 0.95 for a, b in zip(one_core, two_core))
    assert two_core[-1] > one_core[-1]
    # Aggregate throughput saturates: the last step on one core adds less per
    # additional query than the first step did.
    if len(one_core) >= 3:
        first_gain = (one_core[1] - one_core[0]) / (query_counts[1] - query_counts[0])
        last_gain = (one_core[-1] - one_core[-2]) / (query_counts[-1] - query_counts[-2])
        assert last_gain <= first_gain + 1e-6


def run_colocated_sweep():
    return multi_query_colocation_sweep(
        rate_scale=1.0,
        cores=1,
        query_counts=COLOCATED_QUERIES,
        records_per_epoch=COLOCATED_RECORDS_PER_EPOCH,
        num_epochs=COLOCATED_EPOCHS,
        warmup_epochs=max(2, COLOCATED_EPOCHS // 3),
        mode=COLOCATED_MODE,
        record_mode=COLOCATED_RECORD_MODE,
    )


def test_fig11_colocated(benchmark):
    """True co-located multi-query executor vs the closed-form cross-check."""
    rows = benchmark.pedantic(run_colocated_sweep, rounds=1, iterations=1)

    comparison = COLOCATED_MODE == "comparison"
    header = ["queries", "budget/q", "aggregate_mbps", "med_lat_s"]
    if comparison:
        header += ["analytic_mbps", "sim/analytic"]
    table_rows = []
    for row in rows:
        line = [
            int(row["queries"]),
            row["per_query_budget"],
            row["aggregate_throughput_mbps"],
            row.get("median_latency_s", float("nan")),
        ]
        if comparison:
            line += [row["analytic_mbps"], row["ratio"]]
        table_rows.append(line)
    table = format_table(header, table_rows)
    table += f"\n\nper-query CPU demand: {rows[0]['per_query_demand']:.2f} of a core"
    write_result(
        "fig11_colocated",
        table,
        data={
            "config": {
                "query_counts": list(COLOCATED_QUERIES),
                "records_per_epoch": COLOCATED_RECORDS_PER_EPOCH,
                "num_epochs": COLOCATED_EPOCHS,
                "mode": COLOCATED_MODE,
                "record_mode": COLOCATED_RECORD_MODE,
            },
            "rows": rows,
        },
    )

    demand = rows[0]["per_query_demand"]
    if comparison:
        # Below the source-CPU saturation knee (sum of demands within the
        # node's cores) the co-located executor must agree with the analytic
        # extrapolation (acceptance criterion: within 15%).
        for row in rows:
            if row["queries"] * demand <= row["cores"] + 1e-9:
                assert 0.85 <= row["ratio"] <= 1.15, row
    if COLOCATED_MODE in ("simulated", "comparison"):
        # Past the knee co-location degrades per-query throughput: starved
        # instances fall below the unconstrained single-instance rate.  The
        # baseline only exists when the configured counts include a
        # below-knee point (FIG11_QUERIES may start past the knee).
        baseline = rows[0]
        if baseline["queries"] * demand <= baseline["cores"] + 1e-9:
            unconstrained = baseline["per_query_throughput_mbps"]
            starved = [
                row for row in rows if row["queries"] * demand > row["cores"] * 1.5
            ]
            for row in starved:
                assert row["per_query_throughput_mbps"] < 0.95 * unconstrained, row
