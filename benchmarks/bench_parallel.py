"""Worker-pool block stepping vs serial lockstep at fleet scale.

A thin assertion shim over ``configs/parallel_gate.toml`` (see
``benchmarks/bench_record_modes.py`` for the pattern): 1024 sources tiled
across 64 blocks, stepped once by the serial
:class:`~repro.simulation.sharding.ShardedClusterExecutor` and once by a
4-worker :class:`~repro.simulation.parallel.ParallelBlockController` over
shared-memory arenas.

Two contracts, gated separately:

* **Identity, always.**  The parallel run must be bit-identical to the
  serial reference per epoch per source — the worker pool is an execution
  substrate, never a model change.  This assertion runs on every host.
* **Speed, where measurable.**  With ``run.parallel_min_speedup > 0`` the
  parallel run must beat serial by that factor (the CI gate is 2.5x at 4
  workers).  The assertion is skipped when the host has fewer CPUs than
  ``tiling.workers`` — four workers timesliced onto one core measure the
  scheduler, not the controller.
"""

from __future__ import annotations

import os

from repro.scenarios import ScenarioRunner, load_scenario

from .conftest import CONFIG_DIR, write_result


def test_parallel_gate_speedup_and_identity(benchmark):
    spec = load_scenario(CONFIG_DIR / "parallel_gate.toml")
    result = benchmark.pedantic(
        ScenarioRunner().run, args=(spec,), rounds=1, iterations=1
    )
    write_result("parallel_gate", result.table, data=result.bench_payload())

    # Bit-identity is unconditional: per-source per-epoch metrics from the
    # worker pool must equal the serial lockstep reference exactly.
    for strategy, entry in result.raw.items():
        assert entry["identical"] is True, (strategy, entry)
        assert (
            entry["serial_goodput_mbps"] == entry["parallel_goodput_mbps"]
        ), (strategy, entry)

    # The wall-clock gate only means something when the workers can
    # actually run concurrently.
    cpus = os.cpu_count() or 1
    if spec.parallel_min_speedup > 0 and cpus >= spec.tiling.workers:
        for strategy, entry in result.raw.items():
            assert entry["speedup"] >= spec.parallel_min_speedup, (
                strategy,
                entry,
            )
