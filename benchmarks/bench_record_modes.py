"""Object vs batched vs arena record mode on the Figure 10 building block.

A thin assertion shim over ``configs/record_modes.toml`` and
``configs/record_modes_arena_gate.toml`` (see
``benchmarks/bench_fig10_scaling.py`` for the pattern); the historical
``RECMODE_*`` environment knobs still work as deprecated aliases
(:mod:`repro.scenarios.knobs`).

The record-mode fast paths exist so the Fig. 10 simulated sweep can reach
hundreds of sources in CI time; these benchmarks pin down both halves of
that contract on the Fig. 10a configuration (10x input scaling, 55% CPU
budget, both of the figure's strategies):

* every mode produces *identical* goodput and latency metrics,
* batched mode is at least ``run.min_speedup``x faster than object mode at
  64 sources (measured ~10x for Best-OP's drain-heavy path, ~6-7x for
  Jarvis' adaptive source-side processing), and
* arena mode is at least ``run.arena_min_speedup``x faster than batched
  mode at 128 sources for Jarvis, whose source-side group aggregation is
  exactly the per-source Python work the arena vectorizes (measured
  ~4.5x).  Best-OP drains raw records to the SP at this budget, leaving
  batched mode no source-side loop to lose, so it rides along only in the
  identity assertions.

Set the corresponding ``min_speedup`` knob to 0 to skip a wall-clock
assertion on noisy machines.
"""

from __future__ import annotations

from repro.scenarios import ScenarioRunner, load_scenario
from repro.scenarios.knobs import RECMODE_ALIASES, deprecated_env_overrides

from .conftest import CONFIG_DIR, write_result


def _assert_identical_metrics(result) -> None:
    """Every timed mode reports the same goodput/latency/offered numbers."""
    modes = result.spec.record_modes or ("object", "batched")
    reference = modes[0]
    for strategy, entry in result.raw.items():
        for mode in modes[1:]:
            assert (
                entry[f"{reference}_goodput_mbps"] == entry[f"{mode}_goodput_mbps"]
            ), (strategy, mode)
            assert (
                entry[f"{reference}_median_latency_s"]
                == entry[f"{mode}_median_latency_s"]
            ), (strategy, mode)
            reference_offered = entry[
                "offered_mbps" if reference == "object"
                else f"{reference}_offered_mbps"
            ]
            assert reference_offered == entry[f"{mode}_offered_mbps"], (
                strategy,
                mode,
            )


def test_record_mode_speedup_and_equivalence(benchmark):
    spec = load_scenario(
        CONFIG_DIR / "record_modes.toml",
        overrides=deprecated_env_overrides(RECMODE_ALIASES),
    )
    result = benchmark.pedantic(
        ScenarioRunner().run, args=(spec,), rounds=1, iterations=1
    )
    write_result("record_modes", result.table, data=result.bench_payload())

    # Identical metrics: the fast paths are optimizations, never model changes.
    _assert_identical_metrics(result)

    # The fast path must stay fast: >= min_speedup on the Best-OP drain-heavy
    # configuration (measured ~10x; Jarvis' adaptive source-side processing
    # keeps more per-record work, measured ~6-7x, floored at min_speedup too).
    if spec.min_speedup > 0:
        for strategy, entry in result.raw.items():
            assert entry["speedup"] >= spec.min_speedup, (strategy, entry)


def test_arena_gate_speedup_and_equivalence(benchmark):
    spec = load_scenario(CONFIG_DIR / "record_modes_arena_gate.toml")
    result = benchmark.pedantic(
        ScenarioRunner().run, args=(spec,), rounds=1, iterations=1
    )
    write_result(
        "record_modes_arena_gate", result.table, data=result.bench_payload()
    )

    _assert_identical_metrics(result)

    # The fleet arena is the 128-source regression tripwire: whole-block
    # stepping plus columnar group folds must stay >= arena_min_speedup x
    # faster than per-source batched execution on the gated (source-side
    # heavy) strategies from the config's sweep.
    if spec.arena_min_speedup > 0:
        for strategy, entry in result.raw.items():
            assert entry["arena_speedup"] >= spec.arena_min_speedup, (
                strategy,
                entry,
            )
