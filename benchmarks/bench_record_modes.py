"""Object vs batched record mode on the Figure 10 building block.

A thin assertion shim over ``configs/record_modes.toml`` (see
``benchmarks/bench_fig10_scaling.py`` for the pattern); the historical
``RECMODE_*`` environment knobs still work as deprecated aliases
(:mod:`repro.scenarios.knobs`).

The ``record_mode="batched"`` columnar fast path exists so the Fig. 10
simulated sweep can reach hundreds of sources in CI time; this benchmark pins
down both halves of that contract on a 64-source Fig. 10a configuration
(10x input scaling, 55% CPU budget, both of the figure's strategies):

* the two modes produce *identical* goodput and latency metrics, and
* batched mode is at least ``run.min_speedup``x faster than object mode for
  both strategies (measured ~10x for Best-OP's drain-heavy path, ~6-7x for
  Jarvis' adaptive source-side processing).  Set ``run.min_speedup=0`` to
  skip the wall-clock assertion on noisy machines.
"""

from __future__ import annotations

from repro.scenarios import ScenarioRunner, load_scenario
from repro.scenarios.knobs import RECMODE_ALIASES, deprecated_env_overrides

from .conftest import CONFIG_DIR, write_result


def test_record_mode_speedup_and_equivalence(benchmark):
    spec = load_scenario(
        CONFIG_DIR / "record_modes.toml",
        overrides=deprecated_env_overrides(RECMODE_ALIASES),
    )
    result = benchmark.pedantic(
        ScenarioRunner().run, args=(spec,), rounds=1, iterations=1
    )
    write_result("record_modes", result.table, data=result.bench_payload())

    # Identical metrics: batched mode is an optimization, never a model change.
    for strategy, entry in result.raw.items():
        assert entry["object_goodput_mbps"] == entry["batched_goodput_mbps"], strategy
        assert entry["object_median_latency_s"] == entry["batched_median_latency_s"], (
            strategy
        )
        assert entry["offered_mbps"] == entry["batched_offered_mbps"], strategy

    # The fast path must stay fast: >= min_speedup on the Best-OP drain-heavy
    # configuration (measured ~10x; Jarvis' adaptive source-side processing
    # keeps more per-record work, measured ~6-7x, floored at min_speedup too).
    if spec.min_speedup > 0:
        for strategy, entry in result.raw.items():
            assert entry["speedup"] >= spec.min_speedup, (strategy, entry)
