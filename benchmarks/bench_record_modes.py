"""Object vs batched record mode on the Figure 10 building block.

The ``record_mode="batched"`` columnar fast path exists so the Fig. 10
simulated sweep can reach hundreds of sources in CI time; this benchmark pins
down both halves of that contract on a 64-source Fig. 10a configuration
(10x input scaling, 55% CPU budget, both of the figure's strategies):

* the two modes produce *identical* goodput and latency metrics, and
* batched mode is at least ``MIN_SPEEDUP``x faster than object mode for both
  strategies (measured ~10x for Best-OP's drain-heavy path, ~6-7x for
  Jarvis' adaptive source-side processing).

Knobs: ``RECMODE_SOURCES`` / ``RECMODE_RECORDS`` / ``RECMODE_EPOCHS``
override the fleet shape, and ``RECMODE_MIN_SPEEDUP`` the asserted floor
(set it to 0 to skip the wall-clock assertion on noisy machines).
"""

from __future__ import annotations

import gc
import os
import time
from dataclasses import replace

from repro.analysis.experiments import _homogeneous_fleet, make_setup
from repro.analysis.reporting import format_table
from repro.simulation.multisource import MultiSourceExecutor

from .conftest import write_result

SOURCES = int(os.environ.get("RECMODE_SOURCES", "64"))
RECORDS_PER_EPOCH = int(os.environ.get("RECMODE_RECORDS", "2500"))
NUM_EPOCHS = int(os.environ.get("RECMODE_EPOCHS", "12"))
WARMUP_EPOCHS = max(1, NUM_EPOCHS // 4)
MIN_SPEEDUP = float(os.environ.get("RECMODE_MIN_SPEEDUP", "5.0"))

#: The Fig. 10a setting: 10x input scaling at a 55% CPU budget.
RATE_SCALE = 1.0
CPU_BUDGET = 0.55


def run_mode(setup, strategy_name, record_mode):
    """Time one simulated run, excluding fleet construction.

    Both modes pay identical construction cost (same specs, same engine
    setup), so the measurement isolates what the record representation
    changes: the epoch execution itself.
    """
    specs, cluster_config, _ = _homogeneous_fleet(
        setup, strategy_name, CPU_BUDGET, SOURCES, None, 1.0, WARMUP_EPOCHS, 1
    )
    cluster_config = replace(cluster_config, record_mode=record_mode)
    executor = MultiSourceExecutor(
        plan=setup.plan,
        cost_model=setup.cost_model,
        sources=specs,
        cluster_config=cluster_config,
    )
    gc.collect()
    start = time.perf_counter()
    metrics = executor.run(NUM_EPOCHS, warmup_epochs=WARMUP_EPOCHS)
    elapsed = time.perf_counter() - start
    return metrics, elapsed


def run_comparison():
    setup = make_setup(
        "s2s_probe", records_per_epoch=RECORDS_PER_EPOCH, rate_scale=RATE_SCALE
    )
    results = {}
    for strategy_name in ("Best-OP", "Jarvis"):
        object_metrics, object_s = run_mode(setup, strategy_name, "object")
        batched_metrics, batched_s = run_mode(setup, strategy_name, "batched")
        results[strategy_name] = {
            "object_wall_s": object_s,
            "batched_wall_s": batched_s,
            "speedup": object_s / batched_s if batched_s > 0 else float("inf"),
            "object_goodput_mbps": object_metrics.aggregate_throughput_mbps(),
            "batched_goodput_mbps": batched_metrics.aggregate_throughput_mbps(),
            "object_median_latency_s": object_metrics.median_latency_s(),
            "batched_median_latency_s": batched_metrics.median_latency_s(),
            "offered_mbps": object_metrics.aggregate_offered_mbps(),
            "batched_offered_mbps": batched_metrics.aggregate_offered_mbps(),
        }
    return results


def test_record_mode_speedup_and_equivalence(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    rows = [
        [
            strategy,
            entry["object_wall_s"],
            entry["batched_wall_s"],
            entry["speedup"],
            entry["object_goodput_mbps"],
            entry["batched_goodput_mbps"],
        ]
        for strategy, entry in results.items()
    ]
    table = format_table(
        [
            "strategy",
            "object_wall_s",
            "batched_wall_s",
            "speedup",
            "object_goodput_mbps",
            "batched_goodput_mbps",
        ],
        rows,
    )
    table += (
        f"\n\nconfig: {SOURCES} sources x {RECORDS_PER_EPOCH} records/epoch x "
        f"{NUM_EPOCHS} epochs (Fig. 10a: 10x input, 55% CPU)"
    )
    write_result(
        "record_modes",
        table,
        data={
            "config": {
                "sources": SOURCES,
                "records_per_epoch": RECORDS_PER_EPOCH,
                "num_epochs": NUM_EPOCHS,
                "rate_scale": RATE_SCALE,
                "cpu_budget": CPU_BUDGET,
                "min_speedup": MIN_SPEEDUP,
            },
            "results": results,
        },
    )

    # Identical metrics: batched mode is an optimization, never a model change.
    for strategy, entry in results.items():
        assert entry["object_goodput_mbps"] == entry["batched_goodput_mbps"], strategy
        assert entry["object_median_latency_s"] == entry["batched_median_latency_s"], (
            strategy
        )
        assert entry["offered_mbps"] == entry["batched_offered_mbps"], strategy

    # The fast path must stay fast: >= MIN_SPEEDUP on the Best-OP drain-heavy
    # configuration (measured ~10x; Jarvis' adaptive source-side processing
    # keeps more per-record work, measured ~6-7x, floored at MIN_SPEEDUP too).
    if MIN_SPEEDUP > 0:
        assert results["Best-OP"]["speedup"] >= MIN_SPEEDUP, results["Best-OP"]
        assert results["Jarvis"]["speedup"] >= MIN_SPEEDUP, results["Jarvis"]
