"""Figure 3: coarse-grained operator-level vs fine-grained data-level partitioning.

Paper numbers (S2SProbe on a data source with an 80% CPU budget):
operator-level partitioning drains ~22.5 Mbps of the 26.2 Mbps input (86%)
while using only the filter's 13% of CPU; data-level partitioning drains
~9.4 Mbps (36%) while fully using the budget — a 2.4x network reduction.
"""

from __future__ import annotations

from repro.analysis.experiments import make_setup, partitioning_mode_comparison
from repro.analysis.reporting import format_table

from .conftest import write_result

BUDGET = 0.80
EPOCHS = 45
WARMUP = 15
RECORDS_PER_EPOCH = 800


def run_fig3():
    setup = make_setup("s2s_probe", records_per_epoch=RECORDS_PER_EPOCH)
    return setup, partitioning_mode_comparison(
        setup, budget=BUDGET, num_epochs=EPOCHS, warmup_epochs=WARMUP
    )


def test_fig3_partitioning_modes(benchmark):
    setup, results = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    rows = []
    for mode, summary in results.items():
        rows.append(
            [
                mode,
                summary["throughput_mbps"],
                summary["network_mbps"],
                summary["network_fraction_of_input"],
                summary["cpu_utilization"],
            ]
        )
    table = format_table(
        ["partitioning", "throughput_mbps", "network_mbps", "network/input", "cpu_util"],
        rows,
    )
    reduction = (
        results["operator-level"]["network_mbps"]
        / max(1e-9, results["data-level"]["network_mbps"])
    )
    table += (
        f"\n\nnetwork reduction of data-level over operator-level: {reduction:.2f}x"
        f" (paper: ~2.4x; 22.5 Mbps vs 9.4 Mbps at 80% CPU)"
    )
    write_result("fig3_partitioning_modes", table)

    assert results["data-level"]["network_mbps"] < results["operator-level"]["network_mbps"]
    assert reduction > 1.7
