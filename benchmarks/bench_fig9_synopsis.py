"""Figure 9: comparison against data synopses (window-based sampling).

Paper shape: at sampling rates of 0.6-0.8 the per-pair latency-range
estimation error stays within 1 ms for 85-90% of pairs but the network
savings are small; at rates of 0.2-0.4 the network shrinks to 10-32% of the
input but 20-40% of the errors exceed 1 ms and 10-38% of alerts are missed.
Jarvis achieves comparable or better network reduction (11.4-90% of the input
rate, depending on the CPU budget) without any accuracy loss.
"""

from __future__ import annotations

from repro.analysis.experiments import synopsis_comparison
from repro.analysis.reporting import format_table

from .conftest import write_result

SAMPLING_RATES = (0.2, 0.4, 0.6, 0.8)
RECORDS_PER_EPOCH = 800


def run_fig9():
    return synopsis_comparison(
        sampling_rates=SAMPLING_RATES,
        records_per_epoch=RECORDS_PER_EPOCH,
        num_windows=2,
        jarvis_budgets=(1.0, 0.2),
    )


def test_fig9_sampling_vs_jarvis(benchmark):
    results = benchmark.pedantic(run_fig9, rounds=1, iterations=1)

    rows = []
    for rate in SAMPLING_RATES:
        entry = results["sampling"][rate]
        rows.append(
            [
                f"WSP p={rate}",
                entry["network_mbps"],
                entry["transfer_fraction"],
                entry["fraction_within_1ms"],
                entry["alert_miss_rate"],
            ]
        )
    for budget, entry in sorted(results["jarvis"].items(), reverse=True):
        rows.append(
            [
                f"Jarvis ({int(budget * 100)}% CPU)",
                entry["network_mbps"],
                entry["transfer_fraction"],
                1.0,
                0.0,
            ]
        )
    table = (
        f"input rate: {results['input_mbps']:.3f} Mbps\n\n"
        + format_table(
            ["approach", "network_mbps", "network/input", "err<=1ms fraction", "alert miss rate"],
            rows,
        )
    )
    write_result("fig9_synopsis_comparison", table)

    low, mid, high = (
        results["sampling"][0.2],
        results["sampling"][0.4],
        results["sampling"][0.8],
    )
    # Accuracy degrades as the sampling rate drops; alerts get missed.
    assert low["fraction_within_1ms"] <= high["fraction_within_1ms"]
    assert low["alert_miss_rate"] > 0.0
    # Jarvis at full budget ships less than moderate-rate sampling while being
    # exact; the only sampling rate that beats it on bytes (0.2) misses a
    # large share of alerts.
    assert results["jarvis"][1.0]["network_mbps"] < mid["network_mbps"]
    assert low["alert_miss_rate"] > 0.10
