"""Figure 7: query throughput over varying CPU budgets (a: S2SProbe,
b: T2TProbe, c: LogAnalytics) for all six partitioning strategies.

Paper shape: All-SP is flat and network-bound; All-Src collapses at low
budgets; Filter-Src stays network-bound; Best-OP improves in operator-sized
steps; LB-DP tracks Jarvis but ships more raw data; Jarvis wins or ties across
the constrained-budget range (gains of 1.2-4.4x over the baselines).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import make_setup, throughput_sweep
from repro.analysis.reporting import series_table, summarize_sweep

from .conftest import write_result

BUDGETS = (0.2, 0.4, 0.6, 0.8, 1.0)
STRATEGIES = ("All-Src", "All-SP", "Filter-Src", "Best-OP", "LB-DP", "Jarvis")
EPOCHS = 40
WARMUP = 12
RECORDS_PER_EPOCH = 600


def run_sweep(query_name):
    setup = make_setup(query_name, records_per_epoch=RECORDS_PER_EPOCH)
    sweep = throughput_sweep(
        setup=setup,
        budgets=BUDGETS,
        strategies=STRATEGIES,
        num_epochs=EPOCHS,
        warmup_epochs=WARMUP,
    )
    return setup, sweep


def _emit(name, setup, sweep):
    tput = summarize_sweep(sweep, "throughput_mbps")
    net = summarize_sweep(sweep, "network_mbps")
    table = (
        f"offered input per source: {setup.input_rate_mbps:.3f} Mbps, "
        f"uplink: {setup.bandwidth_mbps:.3f} Mbps\n\n"
        "throughput (Mbps) vs CPU budget\n"
        + series_table(tput, x_label="cpu_budget")
        + "\n\nnetwork traffic (Mbps) vs CPU budget\n"
        + series_table(net, x_label="cpu_budget")
    )
    write_result(name, table)
    return tput


@pytest.mark.parametrize(
    "query_name,figure",
    [
        ("s2s_probe", "fig7a_s2sprobe"),
        ("t2t_probe", "fig7b_t2tprobe"),
        ("log_analytics", "fig7c_loganalytics"),
    ],
)
def test_fig7_throughput(benchmark, query_name, figure):
    setup, sweep = benchmark.pedantic(run_sweep, args=(query_name,), rounds=1, iterations=1)
    tput = _emit(figure, setup, sweep)

    # Shape assertions: Jarvis never loses to All-Src, and wins clearly in the
    # constrained-budget regime the paper highlights.
    for budget in BUDGETS:
        assert tput["Jarvis"][budget] >= 0.95 * tput["All-Src"][budget]
    constrained = 0.4
    assert tput["Jarvis"][constrained] >= tput["All-Src"][constrained]
    assert tput["Jarvis"][constrained] >= 0.95 * tput["Best-OP"][constrained]
