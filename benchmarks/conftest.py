"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's figures (or an inline claim)
and writes the resulting rows/series both to stdout and to a text file under
``benchmarks/output/`` so ``EXPERIMENTS.md`` can be refreshed from a single
``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

OUTPUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "output")

#: Scenario configs the benchmark shims execute (one TOML per figure).
CONFIG_DIR = Path(__file__).resolve().parent.parent / "configs"


def write_result(name: str, content: str, data: dict | None = None) -> None:
    """Persist a benchmark's formatted result table.

    Every result also lands as machine-readable JSON
    (``BENCH_<name>.json``): the rendered table always, plus any structured
    ``data`` the benchmark provides — so CI artifacts carry a queryable
    record of each run.
    """
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content.rstrip() + "\n")
    sys.stdout.write(f"\n===== {name} =====\n{content}\n")
    payload = {"table": content.rstrip()}
    if data:
        payload.update(data)
    write_json_result(name, payload)


def _jsonable(value):
    """Best-effort conversion of benchmark payloads to JSON-safe values."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") else str(value)
    return str(value)


def write_json_result(name: str, payload: dict) -> str:
    """Persist a benchmark's machine-readable results.

    Writes ``benchmarks/output/BENCH_<name>.json`` with the given payload
    plus a wall-clock timestamp; CI uploads the directory as an artifact, so
    every run seeds one point of the performance trajectory.
    """
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    document = {"benchmark": name, "generated_unix_s": time.time()}
    document.update(_jsonable(payload))
    path = os.path.join(OUTPUT_DIR, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
