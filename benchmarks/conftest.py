"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's figures (or an inline claim)
and writes the resulting rows/series both to stdout and to a text file under
``benchmarks/output/`` so ``EXPERIMENTS.md`` can be refreshed from a single
``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

OUTPUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "output")


def write_result(name: str, content: str) -> None:
    """Persist a benchmark's formatted result table."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content.rstrip() + "\n")
    sys.stdout.write(f"\n===== {name} =====\n{content}\n")
