"""Section VI-B/VI-C inline claims: adaptation overhead and the operator-count
convergence study, plus an ablation of the StepWise-Adapt design choices.

* Overhead: Jarvis spends less than 1% of a single core in its Profile and
  Adapt phases (Section VI-B).
* Operator-count study: the pure model-agnostic search needs up to ~21 epochs
  to converge in the worst case with four operators (Section VI-C), which is
  why the LP initialisation is a valuable part of the design.
* Ablation: LP-only and w/o-LP-init are compared against full Jarvis on the
  same resource-change scenario (the design choices DESIGN.md calls out).
"""

from __future__ import annotations

from repro.analysis.experiments import (
    adaptation_overhead,
    convergence_run,
    make_setup,
    operator_count_convergence,
)
from repro.analysis.reporting import format_table
from repro.simulation.node import BudgetSchedule

from .conftest import write_result


def run_overhead():
    return adaptation_overhead(num_epochs=30, records_per_epoch=600)


def test_adaptation_overhead(benchmark):
    overhead = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    table = format_table(
        ["adaptation_seconds", "wall_clock_seconds", "core_fraction"],
        [[overhead["adaptation_seconds"], overhead["wall_clock_seconds"], overhead["core_fraction"]]],
        precision=6,
    )
    table += "\n\npaper: Jarvis consumes less than 1% of a single core during Profile/Adapt"
    write_result("overhead_adaptation", table)
    assert overhead["core_fraction"] < 0.01


def run_operator_count():
    return operator_count_convergence(operator_counts=(2, 3, 4, 5), samples_per_count=80)


def test_operator_count_convergence(benchmark):
    results = benchmark.pedantic(run_operator_count, rounds=1, iterations=1)
    rows = [
        [count, data["mean_iterations"], data["max_iterations"], data["samples"]]
        for count, data in sorted(results.items())
    ]
    table = format_table(
        ["operators", "mean epochs to converge", "worst case", "configs"], rows
    )
    table += "\n\npaper: worst-case convergence of the model-agnostic search reaches ~21 epochs at 4 operators"
    write_result("vic_operator_count_convergence", table)
    counts = sorted(results)
    assert results[counts[-1]]["max_iterations"] >= results[counts[0]]["max_iterations"]


def run_ablation():
    setup = make_setup("s2s_probe", records_per_epoch=600)
    schedule = BudgetSchedule([(0, 0.10), (3, 0.90), (18, 0.55)])
    return convergence_run(
        setup=setup,
        strategies=("Jarvis", "LP only", "w/o LP-init"),
        schedule=schedule,
        num_epochs=34,
    )


def test_stepwise_adapt_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for strategy, data in results.items():
        convergence = data["convergence_epochs"]
        summary = data["summary"]
        rows.append(
            [
                strategy,
                convergence.get(3) if convergence.get(3) is not None else "never",
                convergence.get(18) if convergence.get(18) is not None else "never",
                summary["throughput_mbps"],
                summary["network_mbps"],
            ]
        )
    table = format_table(
        ["variant", "conv after +80%", "conv after -35%", "throughput_mbps", "network_mbps"],
        rows,
    )
    write_result("ablation_stepwise_adapt", table)
    assert results["Jarvis"]["convergence_epochs"][3] is not None
