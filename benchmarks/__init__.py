"""Benchmark package regenerating the paper's evaluation figures.

Being a real package (rather than a loose script directory) lets pytest
resolve the benchmarks' relative imports, so individual files can be run
directly: ``PYTHONPATH=src pytest benchmarks/bench_fig10_scaling.py``.
"""
