"""Figure 10 and Section VI-E: scaling the number of data source nodes.

Every benchmark here is a thin assertion shim over a scenario config under
``configs/`` — the parameters live in TOML, the execution in
:class:`repro.scenarios.runner.ScenarioRunner`, and this file keeps only the
paper's acceptance assertions.  Tune a run with ``--set``-style overrides on
the CLI (``python -m repro.scenarios configs/fig10_sim_vs_analytic.toml
--set sweep.sources=1,8,16``); the historical ``FIG10_*`` environment knobs
still work as deprecated aliases (:mod:`repro.scenarios.knobs`).

Paper shape:

* 10x input scaling, 55% CPU (Fig. 10a): Best-OP is network-bound almost
  immediately; Jarvis scales to ~32 sources before degrading.
* 5x scaling, 30% CPU (Fig. 10b): Best-OP scales to ~40 sources, Jarvis to
  ~70 — 75% more data sources.
* no scaling, 5% CPU (Fig. 10c): Best-OP degrades around 180 sources, Jarvis
  keeps scaling past 250.
* Latency (Section VI-E): when both keep up, Jarvis improves median epoch
  latency by ~3.4x; when Best-OP is over capacity its max latency grows beyond
  60 seconds while Jarvis stays within a few seconds.
"""

from __future__ import annotations

import pytest

from repro.scenarios import ScenarioRunner, load_scenario
from repro.scenarios.knobs import (
    FIG10_MIGRATION_ALIASES,
    FIG10_SCALING_ALIASES,
    FIG10_SHARDED_ALIASES,
    deprecated_env_overrides,
)

from .conftest import CONFIG_DIR, write_result

#: The analytic Fig. 10 settings, one scenario config per subfigure.
ANALYTIC_CONFIGS = ("fig10a_10x", "fig10b_5x", "fig10c_1x")

#: Loaded at import so the skip condition sees FIG10_MIGRATION=0 (legacy
#: alias for --set scenario.enabled=false) the way the old knob did.
MIGRATION_SPEC = load_scenario(
    CONFIG_DIR / "fig10_dynamic_replacement.toml",
    overrides=deprecated_env_overrides(FIG10_MIGRATION_ALIASES),
)


@pytest.mark.parametrize("name", ANALYTIC_CONFIGS)
def test_fig10_scaling(benchmark, name):
    spec = load_scenario(CONFIG_DIR / f"{name}.toml")
    result = benchmark.pedantic(
        ScenarioRunner().run, args=(spec,), rounds=1, iterations=1
    )
    write_result(name, result.table, data=result.bench_payload())

    supported = result.raw["supported"]
    assert supported["Jarvis"] > supported["Best-OP"]
    # Latency: once Best-OP saturates, its tail latency explodes while Jarvis
    # stays bounded (Section VI-E).
    last_jarvis = result.raw["sweep"]["Jarvis"][-1]
    last_best = result.raw["sweep"]["Best-OP"][-1]
    assert last_best.max_latency_s >= last_jarvis.max_latency_s


def test_fig10_sim_vs_analytic(benchmark):
    """True multi-source executor vs the closed-form cross-check."""
    spec = load_scenario(
        CONFIG_DIR / "fig10_sim_vs_analytic.toml",
        overrides=deprecated_env_overrides(FIG10_SCALING_ALIASES),
    )
    result = benchmark.pedantic(
        ScenarioRunner().run, args=(spec,), rounds=1, iterations=1
    )
    write_result("fig10_sim_vs_analytic", result.table, data=result.bench_payload())

    # Below the saturation knee the measured executor must agree with the
    # analytic cross-check (acceptance criterion: within 10%).
    for strategy, entries in result.raw.items():
        for entry in entries:
            if entry["simulated_network_utilization"] < 0.8:
                assert 0.9 <= entry["ratio"] <= 1.1, (strategy, entry)


def test_fig10_sharded_scaling(benchmark):
    """Figure 4b tiling: the Fig. 10 sweep continued past one block's knee.

    A fixed fleet is partitioned across K stream-processor building blocks
    (per-block ingress sized so the fleet saturates a single block); adding
    blocks divides the contention, so aggregate goodput must keep growing
    with K — the scale-out behaviour one ``MultiSourceExecutor`` cannot show.
    """
    spec = load_scenario(
        CONFIG_DIR / "fig10_sharded_scaling.toml",
        overrides=deprecated_env_overrides(FIG10_SHARDED_ALIASES),
    )
    result = benchmark.pedantic(
        ScenarioRunner().run, args=(spec,), rounds=1, iterations=1
    )
    write_result("fig10_sharded_scaling", result.table, data=result.bench_payload())

    for strategy, entries in result.raw.items():
        throughputs = [m.aggregate_throughput_mbps() for m in entries]
        utilizations = [m.network_utilization() for m in entries]
        # Tiling must never hurt, and when the single block is link-saturated
        # it must help: goodput grows with K past the single-block knee.
        for prev, nxt in zip(throughputs, throughputs[1:]):
            assert nxt >= 0.98 * prev, (strategy, throughputs)
        if utilizations[0] > 0.97 and len(throughputs) > 1:
            assert throughputs[-1] > 1.1 * throughputs[0], (strategy, throughputs)


@pytest.mark.skipif(
    not MIGRATION_SPEC.enabled, reason="scenario.enabled=false (FIG10_MIGRATION=0)"
)
def test_fig10_dynamic_replacement(benchmark):
    """Dynamic re-placement on a mid-run hotspot: static vs dynamic vs oracle.

    One block's fleet doubles its record rate at the shift epoch; the static
    placement (frozen on nominal rates) saturates that block while its
    neighbour idles.  Dynamic re-placement must live-migrate sources off the
    hot block and recover at least half of the goodput gap to an oracle
    placement built with perfect post-shift knowledge.
    """
    result = benchmark.pedantic(
        ScenarioRunner().run, args=(MIGRATION_SPEC,), rounds=1, iterations=1
    )
    write_result(
        "fig10_dynamic_replacement", result.table, data=result.bench_payload()
    )

    # Dynamic placement must beat static and recover >= 50% of the oracle gap.
    raw = result.raw
    assert raw["oracle_mbps"] > raw["static_mbps"]
    assert raw["dynamic_mbps"] > raw["static_mbps"]
    assert raw["gap_recovered"] >= 0.5
    assert len(raw["migrations"]) >= 1
