"""Figure 10 and Section VI-E: scaling the number of data source nodes.

Paper shape:

* 10x input scaling, 55% CPU (Fig. 10a): Best-OP is network-bound almost
  immediately; Jarvis scales to ~32 sources before degrading.
* 5x scaling, 30% CPU (Fig. 10b): Best-OP scales to ~40 sources, Jarvis to
  ~70 — 75% more data sources.
* no scaling, 5% CPU (Fig. 10c): Best-OP degrades around 180 sources, Jarvis
  keeps scaling past 250.
* Latency (Section VI-E): when both keep up, Jarvis improves median epoch
  latency by ~3.4x; when Best-OP is over capacity its max latency grows beyond
  60 seconds while Jarvis stays within a few seconds.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import (
    dynamic_replacement_sweep,
    max_supported_sources,
    scaling_comparison,
    scaling_sweep,
    sharded_scaling_sweep,
)
from repro.analysis.reporting import format_table

from .conftest import write_result

RECORDS_PER_EPOCH = 600

#: Source counts for the simulated (true multi-source) sweep.  Override with
#: e.g. ``FIG10_SOURCES=1,8,16,32 pytest benchmarks/bench_fig10_scaling.py``;
#: the default keeps the full-fidelity simulation small enough for CI.
SIM_SOURCES = tuple(
    int(part) for part in os.environ.get("FIG10_SOURCES", "1,2,4,8").split(",")
)
SIM_EPOCHS = int(os.environ.get("FIG10_EPOCHS", "25"))
SIM_RECORDS_PER_EPOCH = int(os.environ.get("FIG10_RECORDS", "300"))
#: Record representation for the simulated sweeps.  The columnar batched mode
#: produces bit-identical metrics (test-enforced) several times faster, which
#: is what lets ``FIG10_SOURCES`` extend past 100 sources in CI time.
SIM_RECORD_MODE = os.environ.get("FIG10_RECORD_MODE", "batched")
#: Building-block counts for the sharded (Figure 4b tiling) sweep, and the
#: fixed fleet that is partitioned across them.  Override with e.g.
#: ``FIG10_BLOCKS=1,2 FIG10_FLEET=4 pytest benchmarks/bench_fig10_scaling.py``.
SHARD_BLOCKS = tuple(
    int(part) for part in os.environ.get("FIG10_BLOCKS", "1,2,4").split(",")
)
SHARD_FLEET_SOURCES = int(os.environ.get("FIG10_FLEET", "8"))
#: Dynamic re-placement (hotspot migration) benchmark: set ``FIG10_MIGRATION=0``
#: to skip it, or override the scenario size with ``FIG10_MIGRATION_FLEET`` /
#: ``FIG10_MIGRATION_EPOCHS`` / ``FIG10_MIGRATION_SHIFT``.
MIGRATION_ENABLED = os.environ.get("FIG10_MIGRATION", "1") not in ("0", "false", "no")
MIGRATION_FLEET = int(os.environ.get("FIG10_MIGRATION_FLEET", "16"))
MIGRATION_EPOCHS = int(os.environ.get("FIG10_MIGRATION_EPOCHS", "30"))
MIGRATION_SHIFT = int(os.environ.get("FIG10_MIGRATION_SHIFT", "8"))
SETTINGS = {
    "fig10a_10x": dict(rate_scale=1.0, cpu_budget=0.55, node_counts=(1, 8, 16, 24, 32, 40, 56)),
    "fig10b_5x": dict(rate_scale=0.5, cpu_budget=0.30, node_counts=(1, 16, 32, 48, 64, 80, 96)),
    "fig10c_1x": dict(rate_scale=0.1, cpu_budget=0.05, node_counts=(1, 60, 120, 180, 250, 320)),
}


def run_setting(name):
    params = SETTINGS[name]
    sweep = scaling_sweep(
        rate_scale=params["rate_scale"],
        cpu_budget=params["cpu_budget"],
        node_counts=params["node_counts"],
        strategies=("Jarvis", "Best-OP"),
        records_per_epoch=RECORDS_PER_EPOCH,
        num_epochs=35,
        warmup_epochs=12,
    )
    supported = max_supported_sources(
        rate_scale=params["rate_scale"],
        cpu_budget=params["cpu_budget"],
        records_per_epoch=RECORDS_PER_EPOCH,
        limit=400,
    )
    return sweep, supported


@pytest.mark.parametrize("name", list(SETTINGS))
def test_fig10_scaling(benchmark, name):
    sweep, supported = benchmark.pedantic(run_setting, args=(name,), rounds=1, iterations=1)

    rows = []
    node_counts = SETTINGS[name]["node_counts"]
    for i, n in enumerate(node_counts):
        jarvis = sweep["Jarvis"][i]
        best_op = sweep["Best-OP"][i]
        rows.append(
            [
                n,
                jarvis.expected_throughput_mbps,
                jarvis.aggregate_throughput_mbps,
                best_op.aggregate_throughput_mbps,
                jarvis.median_latency_s,
                best_op.median_latency_s,
                jarvis.max_latency_s,
                best_op.max_latency_s,
            ]
        )
    table = format_table(
        [
            "sources",
            "expected_mbps",
            "jarvis_mbps",
            "bestop_mbps",
            "jarvis_med_lat_s",
            "bestop_med_lat_s",
            "jarvis_max_lat_s",
            "bestop_max_lat_s",
        ],
        rows,
    )
    table += (
        "\n\nmax sources supported without degradation: "
        f"Jarvis={supported['Jarvis']}, Best-OP={supported['Best-OP']} "
        f"(Jarvis supports {100.0 * (supported['Jarvis'] / max(1, supported['Best-OP']) - 1):.0f}% more)"
    )
    write_result(
        name,
        table,
        data={
            "config": dict(SETTINGS[name], node_counts=list(node_counts)),
            "supported_sources": supported,
            "rows": rows,
        },
    )

    assert supported["Jarvis"] > supported["Best-OP"]
    # Latency: once Best-OP saturates, its tail latency explodes while Jarvis
    # stays bounded (Section VI-E).
    last_jarvis = sweep["Jarvis"][-1]
    last_best = sweep["Best-OP"][-1]
    assert last_best.max_latency_s >= last_jarvis.max_latency_s


def run_simulated_comparison():
    return scaling_comparison(
        rate_scale=1.0,
        cpu_budget=0.55,
        node_counts=SIM_SOURCES,
        strategies=("Jarvis", "Best-OP"),
        records_per_epoch=SIM_RECORDS_PER_EPOCH,
        num_epochs=SIM_EPOCHS,
        warmup_epochs=max(2, SIM_EPOCHS // 3),
        record_mode=SIM_RECORD_MODE,
    )


def test_fig10_sim_vs_analytic(benchmark):
    """True multi-source executor vs the closed-form cross-check."""
    comparison = benchmark.pedantic(run_simulated_comparison, rounds=1, iterations=1)

    rows = []
    for strategy, entries in comparison.items():
        for entry in entries:
            rows.append(
                [
                    strategy,
                    int(entry["sources"]),
                    entry["analytic_mbps"],
                    entry["simulated_mbps"],
                    entry["ratio"],
                    entry["simulated_network_utilization"],
                    entry["simulated_median_latency_s"],
                ]
            )
    table = format_table(
        [
            "strategy",
            "sources",
            "analytic_mbps",
            "simulated_mbps",
            "sim/analytic",
            "sim_link_util",
            "sim_med_lat_s",
        ],
        rows,
    )
    # VI-E latency distribution, read off the largest simulated source count
    # (no extra simulation: scaling_comparison already measured it).
    table += "\n\nVI-E latency at {} sources:".format(max(SIM_SOURCES))
    for strategy, entries in comparison.items():
        stats = max(entries, key=lambda entry: entry["sources"])
        table += (
            f"\n  {strategy}: median={stats['simulated_median_latency_s']:.2f}s "
            f"p95={stats['simulated_p95_latency_s']:.2f}s "
            f"max={stats['simulated_max_latency_s']:.2f}s"
        )
    write_result(
        "fig10_sim_vs_analytic",
        table,
        data={
            "config": {
                "sources": list(SIM_SOURCES),
                "records_per_epoch": SIM_RECORDS_PER_EPOCH,
                "num_epochs": SIM_EPOCHS,
                "record_mode": SIM_RECORD_MODE,
            },
            "results": comparison,
        },
    )

    # Below the saturation knee the measured executor must agree with the
    # analytic cross-check (acceptance criterion: within 10%).
    for strategy, entries in comparison.items():
        for entry in entries:
            if entry["simulated_network_utilization"] < 0.8:
                assert 0.9 <= entry["ratio"] <= 1.1, (strategy, entry)


def run_sharded_sweep():
    return sharded_scaling_sweep(
        rate_scale=1.0,
        cpu_budget=0.55,
        num_sources=SHARD_FLEET_SOURCES,
        block_counts=SHARD_BLOCKS,
        strategies=("Jarvis", "Best-OP"),
        records_per_epoch=SIM_RECORDS_PER_EPOCH,
        num_epochs=SIM_EPOCHS,
        warmup_epochs=max(2, SIM_EPOCHS // 3),
        record_mode=SIM_RECORD_MODE,
    )


def test_fig10_sharded_scaling(benchmark):
    """Figure 4b tiling: the Fig. 10 sweep continued past one block's knee.

    A fixed fleet is partitioned across K stream-processor building blocks
    (per-block ingress sized so the fleet saturates a single block); adding
    blocks divides the contention, so aggregate goodput must keep growing
    with K — the scale-out behaviour one ``MultiSourceExecutor`` cannot show.
    """
    sweep = benchmark.pedantic(run_sharded_sweep, rounds=1, iterations=1)

    rows = []
    for strategy, entries in sweep.items():
        for k, metrics in zip(SHARD_BLOCKS, entries):
            placement = metrics.metadata["placement"]
            rows.append(
                [
                    strategy,
                    k,
                    metrics.aggregate_offered_mbps(),
                    metrics.aggregate_throughput_mbps(),
                    metrics.network_utilization(),
                    metrics.median_latency_s(),
                    max(placement["sources_per_block"]),
                ]
            )
    table = format_table(
        [
            "strategy",
            "blocks",
            "offered_mbps",
            "goodput_mbps",
            "link_util",
            "med_lat_s",
            "max_srcs_per_block",
        ],
        rows,
    )
    write_result(
        "fig10_sharded_scaling",
        table,
        data={
            "config": {
                "blocks": list(SHARD_BLOCKS),
                "fleet_sources": SHARD_FLEET_SOURCES,
                "records_per_epoch": SIM_RECORDS_PER_EPOCH,
                "num_epochs": SIM_EPOCHS,
                "record_mode": SIM_RECORD_MODE,
            },
            "results": {
                strategy: [m.summary() for m in entries]
                for strategy, entries in sweep.items()
            },
        },
    )

    for strategy, entries in sweep.items():
        throughputs = [m.aggregate_throughput_mbps() for m in entries]
        utilizations = [m.network_utilization() for m in entries]
        # Tiling must never hurt, and when the single block is link-saturated
        # it must help: goodput grows with K past the single-block knee.
        for prev, nxt in zip(throughputs, throughputs[1:]):
            assert nxt >= 0.98 * prev, (strategy, throughputs)
        if utilizations[0] > 0.97 and len(throughputs) > 1:
            assert throughputs[-1] > 1.1 * throughputs[0], (strategy, throughputs)


def run_migration_sweep():
    return dynamic_replacement_sweep(
        num_sources=MIGRATION_FLEET,
        num_epochs=MIGRATION_EPOCHS,
        shift_epoch=MIGRATION_SHIFT,
        records_per_epoch=SIM_RECORDS_PER_EPOCH,
        record_mode=SIM_RECORD_MODE,
    )


@pytest.mark.skipif(not MIGRATION_ENABLED, reason="FIG10_MIGRATION=0")
def test_fig10_dynamic_replacement(benchmark):
    """Dynamic re-placement on a mid-run hotspot: static vs dynamic vs oracle.

    One block's fleet doubles its record rate at the shift epoch; the static
    placement (frozen on nominal rates) saturates that block while its
    neighbour idles.  Dynamic re-placement must live-migrate sources off the
    hot block and recover at least half of the goodput gap to an oracle
    placement built with perfect post-shift knowledge.
    """
    result = benchmark.pedantic(run_migration_sweep, rounds=1, iterations=1)

    rows = [
        [
            label,
            result[f"{label}_mbps"],
            result[label].network_utilization(),
            result[label].median_latency_s(),
            result[label].num_migrations(),
        ]
        for label in ("static", "dynamic", "oracle")
    ]
    table = format_table(
        ["placement", "goodput_mbps", "link_util", "med_lat_s", "migrations"],
        rows,
    )
    table += f"\n\ngap recovered by dynamic re-placement: {100 * result['gap_recovered']:.0f}%"
    for event in result["migrations"]:
        table += (
            f"\n  epoch {event['epoch']}: {event['source']} "
            f"block {event['from_block']} -> {event['to_block']}"
        )
    write_result(
        "fig10_dynamic_replacement",
        table,
        data={
            "config": {
                "fleet": MIGRATION_FLEET,
                "epochs": MIGRATION_EPOCHS,
                "shift_epoch": MIGRATION_SHIFT,
                "records_per_epoch": SIM_RECORDS_PER_EPOCH,
                "record_mode": SIM_RECORD_MODE,
            },
            "scenario": result["scenario"],
            "goodput_mbps": {
                label: result[f"{label}_mbps"]
                for label in ("static", "dynamic", "oracle")
            },
            "gap_recovered": result["gap_recovered"],
            "migrations": result["migrations"],
        },
    )

    # Dynamic placement must beat static and recover >= 50% of the oracle gap.
    assert result["oracle_mbps"] > result["static_mbps"]
    assert result["dynamic_mbps"] > result["static_mbps"]
    assert result["gap_recovered"] >= 0.5
    assert len(result["migrations"]) >= 1
