"""Figure 8: convergence analysis after resource-condition changes.

Paper shape (epoch duration = 1 s, three epochs needed to detect a change):

* S2SProbe (Fig. 8a): budget 10% -> 90% at epoch 3, 90% -> 60% at epoch 18.
  Jarvis stabilizes within 1-2 epochs of each change thanks to the LP
  initialisation; the pure model-agnostic search (w/o LP-init) needs 4-6.
* T2TProbe (Fig. 8b): budget 10% -> 100% at epoch 3, then the join table grows
  10x causing congestion.  Inaccurate profiling of the expensive join keeps
  "LP only" from stabilizing; Jarvis needs its fine-tuning step.
"""

from __future__ import annotations

from repro.analysis.experiments import (
    convergence_run,
    make_setup,
    reset_jarvis_plan,
    swap_join_table,
)
from repro.analysis.reporting import format_table
from repro.query.records import IpToTorTable
from repro.simulation.node import BudgetSchedule

from .conftest import write_result

STRATEGIES = ("Jarvis", "LP only", "w/o LP-init")
RECORDS_PER_EPOCH = 600


def _format(results, change_epochs):
    rows = []
    for strategy, data in results.items():
        convergence = data["convergence_epochs"]
        rows.append(
            [strategy]
            + [
                convergence.get(change) if convergence.get(change) is not None else "never"
                for change in change_epochs
            ]
        )
    table = format_table(
        ["strategy"] + [f"epochs after change@{c}" for c in change_epochs], rows
    )
    timelines = "\n".join(
        f"{strategy:12s} states: {' '.join(s[:4] if s else '----' for s in data['states'])}"
        for strategy, data in results.items()
    )
    return table + "\n\nper-epoch query states:\n" + timelines


def run_fig8a():
    setup = make_setup("s2s_probe", records_per_epoch=RECORDS_PER_EPOCH)
    schedule = BudgetSchedule([(0, 0.10), (3, 0.90), (18, 0.60)])
    return convergence_run(
        setup=setup, strategies=STRATEGIES, schedule=schedule, num_epochs=32
    )


def test_fig8a_s2sprobe_convergence(benchmark):
    results = benchmark.pedantic(run_fig8a, rounds=1, iterations=1)
    write_result("fig8a_s2sprobe_convergence", _format(results, [3, 18]))
    jarvis = results["Jarvis"]["convergence_epochs"]
    no_lp = results["w/o LP-init"]["convergence_epochs"]
    assert jarvis[3] is not None
    assert no_lp[3] is None or jarvis[3] <= no_lp[3]


def run_fig8b():
    setup = make_setup("t2t_probe", records_per_epoch=RECORDS_PER_EPOCH, table_size=500)
    schedule = BudgetSchedule([(0, 0.10), (3, 1.00)])
    big_table = IpToTorTable.dense(5000)
    events = {
        12: swap_join_table(big_table),
        22: reset_jarvis_plan(),
    }
    return convergence_run(
        setup=setup,
        strategies=STRATEGIES,
        schedule=schedule,
        num_epochs=32,
        events=events,
    )


def test_fig8b_t2tprobe_convergence(benchmark):
    results = benchmark.pedantic(run_fig8b, rounds=1, iterations=1)
    write_result("fig8b_t2tprobe_convergence", _format(results, [3, 12]))
    jarvis = results["Jarvis"]["convergence_epochs"]
    assert jarvis[3] is not None


def run_fig8c():
    setup = make_setup("log_analytics", records_per_epoch=RECORDS_PER_EPOCH)
    schedule = BudgetSchedule([(0, 0.05), (3, 0.60), (16, 0.20)])
    return convergence_run(
        setup=setup, strategies=STRATEGIES, schedule=schedule, num_epochs=28
    )


def test_fig8c_loganalytics_convergence(benchmark):
    results = benchmark.pedantic(run_fig8c, rounds=1, iterations=1)
    write_result("fig8c_loganalytics_convergence", _format(results, [3, 16]))
    assert results["Jarvis"]["convergence_epochs"][3] is not None
