"""Tests for the Section IV-E extensions: fair allocation and checkpointing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.checkpoint import Checkpoint, CheckpointPolicy, CheckpointStore
from repro.core.fairness import FairShareAllocator, QueryDemand, max_min_fair_allocation
from repro.errors import ConfigurationError, SimulationError
from repro.query.builder import s2s_probe_query
from repro.query.records import PingmeshRecord


# ---------------------------------------------------------------------------
# Max-min fair allocation
# ---------------------------------------------------------------------------


class TestMaxMinFairness:
    def test_enough_capacity_satisfies_everyone(self):
        demands = [QueryDemand("a", 0.3), QueryDemand("b", 0.2)]
        allocation = max_min_fair_allocation(demands, capacity=1.0)
        assert allocation == {"a": pytest.approx(0.3), "b": pytest.approx(0.2)}

    def test_scarce_capacity_split_equally(self):
        demands = [QueryDemand("a", 0.9), QueryDemand("b", 0.9)]
        allocation = max_min_fair_allocation(demands, capacity=1.0)
        assert allocation["a"] == pytest.approx(0.5)
        assert allocation["b"] == pytest.approx(0.5)

    def test_small_demand_frees_capacity_for_large_one(self):
        demands = [QueryDemand("small", 0.1), QueryDemand("large", 0.9)]
        allocation = max_min_fair_allocation(demands, capacity=0.6)
        assert allocation["small"] == pytest.approx(0.1)
        assert allocation["large"] == pytest.approx(0.5)

    def test_weighted_allocation(self):
        demands = [QueryDemand("a", 1.0, weight=2.0), QueryDemand("b", 1.0, weight=1.0)]
        allocation = max_min_fair_allocation(demands, capacity=0.9)
        assert allocation["a"] == pytest.approx(0.6)
        assert allocation["b"] == pytest.approx(0.3)

    def test_zero_capacity(self):
        allocation = max_min_fair_allocation([QueryDemand("a", 0.5)], capacity=0.0)
        assert allocation["a"] == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QueryDemand("a", -0.1)
        with pytest.raises(ConfigurationError):
            QueryDemand("a", 0.1, weight=0.0)
        with pytest.raises(ConfigurationError):
            max_min_fair_allocation([QueryDemand("a", 0.1)], capacity=-1.0)
        with pytest.raises(ConfigurationError):
            max_min_fair_allocation(
                [QueryDemand("a", 0.1), QueryDemand("a", 0.2)], capacity=1.0
            )

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=6),
        st.floats(min_value=0.0, max_value=4.0),
    )
    def test_allocation_invariants(self, demand_values, capacity):
        demands = [QueryDemand(f"q{i}", d) for i, d in enumerate(demand_values)]
        allocation = max_min_fair_allocation(demands, capacity)
        # Never exceed a query's demand, never exceed capacity overall.
        for d in demands:
            assert allocation[d.name] <= d.demand + 1e-9
        assert sum(allocation.values()) <= capacity + 1e-6
        # Work-conserving: either capacity or every demand is exhausted.
        total_demand = sum(d.demand for d in demands)
        assert (
            sum(allocation.values()) >= min(capacity, total_demand) - 1e-6
        )


class TestFairShareAllocator:
    def test_register_and_allocate(self):
        allocator = FairShareAllocator(capacity=1.0)
        allocator.register("pingmesh", 0.9)
        allocator.register("logs", 0.3)
        allocations = allocator.allocations()
        assert allocations["logs"] == pytest.approx(0.3)
        assert allocations["pingmesh"] == pytest.approx(0.7)
        assert len(allocator) == 2

    def test_capacity_update_changes_allocation(self):
        allocator = FairShareAllocator(capacity=1.0)
        allocator.register("a", 0.9)
        allocator.register("b", 0.9)
        assert allocator.allocation_for("a") == pytest.approx(0.5)
        allocator.set_capacity(2.0)
        assert allocator.allocation_for("a") == pytest.approx(0.9)

    def test_unregister(self):
        allocator = FairShareAllocator(capacity=1.0)
        allocator.register("a", 0.9)
        allocator.unregister("a")
        assert allocator.allocation_for("a") == 0.0
        assert len(allocator) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FairShareAllocator(capacity=-1.0)


# ---------------------------------------------------------------------------
# Checkpointing
# ---------------------------------------------------------------------------


def probes(n, dst_offset=0):
    return [PingmeshRecord(float(i), 1, 100 + dst_offset + (i % 5), 500.0 + i) for i in range(n)]


class TestCheckpointPolicy:
    def test_periodic_trigger(self):
        policy = CheckpointPolicy(every_epochs=5, on_anomaly=False)
        fired = [epoch for epoch in range(20) if policy.should_checkpoint(epoch)]
        assert fired == [4, 9, 14, 19]

    def test_anomaly_trigger(self):
        policy = CheckpointPolicy(every_epochs=0, on_anomaly=True)
        assert policy.should_checkpoint(3, anomaly_observed=True)
        assert not policy.should_checkpoint(3, anomaly_observed=False)

    def test_validation(self):
        with pytest.raises(SimulationError):
            CheckpointPolicy(every_epochs=-1)


class TestCheckpointStore:
    def make_operators(self):
        return [op.clone() for op in s2s_probe_query().logical_plan().operators]

    def test_capture_snapshots_stateful_state(self):
        operators = self.make_operators()
        operators[2].process(probes(20))
        store = CheckpointStore()
        checkpoint = store.capture(operators, epoch=4)
        assert isinstance(checkpoint, Checkpoint)
        assert "group_aggregate" in checkpoint.states
        assert checkpoint.size_bytes > 0
        assert store.latest is checkpoint

    def test_snapshot_is_isolated_from_live_state(self):
        operators = self.make_operators()
        operators[2].process(probes(10))
        store = CheckpointStore()
        checkpoint = store.capture(operators, epoch=0)
        groups_at_checkpoint = len(checkpoint.states["group_aggregate"])
        operators[2].process(probes(50, dst_offset=50))
        assert len(checkpoint.states["group_aggregate"]) == groups_at_checkpoint

    def test_restore_recovers_window_state_after_failure(self):
        operators = self.make_operators()
        operators[2].process(probes(30))
        expected_rows = {
            row.group_key: row.values
            for row in operators[2].clone().process(probes(30)) or []
        }
        store = CheckpointStore()
        store.capture(operators, epoch=2)

        # Simulate a node failure: fresh operators with empty state.
        recovered = self.make_operators()
        restored = store.restore(recovered)
        assert restored == 1
        rows = {row.group_key: row.values for row in recovered[2].flush()}
        original = self.make_operators()
        original[2].process(probes(30))
        reference = {row.group_key: row.values for row in original[2].flush()}
        assert rows.keys() == reference.keys()
        for key in reference:
            assert rows[key]["avg(rtt)"] == pytest.approx(reference[key]["avg(rtt)"])

    def test_restore_without_checkpoint_fails(self):
        with pytest.raises(SimulationError):
            CheckpointStore().restore(self.make_operators())

    def test_keep_last_bounds_history(self):
        operators = self.make_operators()
        store = CheckpointStore(keep_last=2)
        for epoch in range(5):
            operators[2].process(probes(5, dst_offset=epoch))
            store.capture(operators, epoch=epoch)
        assert len(store) == 2
        assert store.latest.epoch == 4

    def test_maybe_capture_follows_policy(self):
        operators = self.make_operators()
        operators[2].process(probes(5))
        store = CheckpointStore(CheckpointPolicy(every_epochs=3, on_anomaly=True))
        assert store.maybe_capture(operators, epoch=0) is None
        assert store.maybe_capture(operators, epoch=2) is not None
        assert store.maybe_capture(operators, epoch=3, anomaly_observed=True) is not None
        assert len(store) == 2

    def test_total_checkpoint_bytes_accumulates(self):
        operators = self.make_operators()
        operators[2].process(probes(10))
        store = CheckpointStore()
        store.capture(operators, epoch=0)
        store.capture(operators, epoch=1)
        assert store.total_checkpoint_bytes >= 2 * store.latest.size_bytes

    def test_validation(self):
        with pytest.raises(SimulationError):
            CheckpointStore(keep_last=0)
