"""Unit tests for the partitioning strategies (Jarvis baselines and ablations)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ground_truth_profile, make_strategy
from repro.baselines import (
    AllSPStrategy,
    AllSrcStrategy,
    BestOPStrategy,
    FilterSrcStrategy,
    JarvisStrategy,
    LoadBalanceDPStrategy,
    LPOnlyStrategy,
    NoLPInitStrategy,
    StaticLoadFactorStrategy,
    static_profile,
)
from repro.core.control_proxy import ProxyObservation
from repro.core.runtime import EpochObservation
from repro.core.state import OperatorState, RuntimePhase
from repro.errors import ConfigurationError, PartitioningError
from repro.query.builder import s2s_probe_query
from repro.workloads.pingmesh import s2s_cost_model


def observation(budget, epoch=0, states=(OperatorState.STABLE,) * 3):
    return EpochObservation(
        epoch=epoch,
        proxy_observations=[
            ProxyObservation(state, 100, 100, 0, 100, 0, 0.0) for state in states
        ],
        compute_budget=budget,
        records_injected=100,
    )


@pytest.fixture()
def profile():
    query = s2s_probe_query()
    operators = query.logical_plan().operators
    return static_profile(
        operators,
        s2s_cost_model(query, reference_records_per_second=1000),
        relay_ratios=[1.0, 0.86, 0.3],
        records_per_epoch=1000,
        compute_budget=0.6,
    )


class TestStaticStrategies:
    def test_all_sp_is_all_zero(self):
        assert AllSPStrategy().initial_load_factors(3) == [0.0, 0.0, 0.0]
        assert AllSPStrategy().on_epoch_end(observation(0.5)) is None

    def test_all_src_is_all_one_and_has_no_drain_path(self):
        strategy = AllSrcStrategy()
        assert strategy.initial_load_factors(3) == [1.0, 1.0, 1.0]
        assert strategy.supports_drain is False

    def test_filter_src_keeps_window_and_filter_only(self):
        operators = s2s_probe_query().logical_plan().operators
        strategy = FilterSrcStrategy(operators)
        assert strategy.initial_load_factors(3) == [1.0, 1.0, 0.0]

    def test_filter_src_stops_at_first_non_filter(self):
        from repro.query.builder import log_analytics_query

        operators = log_analytics_query().logical_plan().operators
        strategy = FilterSrcStrategy(operators)
        factors = strategy.initial_load_factors(len(operators))
        assert factors[0] == 1.0
        assert all(f == 0.0 for f in factors[1:])

    def test_filter_src_requires_operators(self):
        with pytest.raises(PartitioningError):
            FilterSrcStrategy([])

    def test_static_strategy_pads_and_truncates(self):
        strategy = StaticLoadFactorStrategy([1.0, 0.5])
        assert strategy.initial_load_factors(3) == [1.0, 0.5, 0.0]
        assert strategy.initial_load_factors(1) == [1.0]

    def test_static_strategy_validates_range(self):
        with pytest.raises(PartitioningError):
            StaticLoadFactorStrategy([1.5])


class TestBestOP:
    def test_boundary_depends_on_budget(self, profile):
        strategy = BestOPStrategy(profile)
        factors = strategy.initial_load_factors(3)
        assert factors == [1.0, 1.0, 0.0]  # 60% fits W+F but not G+R
        assert strategy.boundary == 2

    def test_recomputes_when_budget_changes(self, profile):
        strategy = BestOPStrategy(profile)
        strategy.initial_load_factors(3)
        new_factors = strategy.on_epoch_end(observation(budget=1.0))
        assert new_factors == [1.0, 1.0, 1.0]
        assert strategy.on_epoch_end(observation(budget=1.0)) is None

    def test_offload_limit(self, profile):
        strategy = BestOPStrategy(profile, offload_limit=1)
        assert strategy.initial_load_factors(3) == [1.0, 0.0, 0.0]

    def test_requires_profile(self):
        from repro.core.profiler import PipelineProfile

        with pytest.raises(PartitioningError):
            BestOPStrategy(PipelineProfile([], 1.0, 100))


class TestLBDP:
    def test_split_limited_by_feasibility(self, profile):
        strategy = LoadBalanceDPStrategy(profile, sp_compute_share=0.25)
        factors = strategy.initial_load_factors(3)
        # The query needs ~0.93 cores; 0.6 of a core can process ~64% of input.
        assert factors[0] == pytest.approx(0.6 / 0.93, rel=0.05)
        assert factors[1:] == [1.0, 1.0]

    def test_proportional_split_when_feasible(self, profile):
        strategy = LoadBalanceDPStrategy(profile, sp_compute_share=2.0)
        strategy.on_epoch_end(observation(budget=0.5))
        assert strategy.local_fraction == pytest.approx(0.5 / 2.5, rel=0.05)

    def test_recompute_on_budget_change(self, profile):
        strategy = LoadBalanceDPStrategy(profile)
        strategy.initial_load_factors(3)
        updated = strategy.on_epoch_end(observation(budget=0.9))
        assert updated is not None
        assert updated[0] > 0.6 / 0.93

    def test_validation(self, profile):
        with pytest.raises(PartitioningError):
            LoadBalanceDPStrategy(profile, sp_compute_share=-1.0)


class TestJarvisAndAblations:
    def test_jarvis_starts_in_startup_phase(self):
        strategy = JarvisStrategy(["window", "filter", "group_aggregate"])
        assert strategy.phase is RuntimePhase.STARTUP
        assert strategy.initial_load_factors(3) == [0.0, 0.0, 0.0]
        assert strategy.wants_profile() is False

    def test_jarvis_delegates_to_runtime(self):
        strategy = JarvisStrategy(["window", "filter", "group_aggregate"])
        factors = strategy.on_epoch_end(observation(0.6, states=(OperatorState.IDLE,) * 3))
        assert factors == [0.0, 0.0, 0.0]
        assert strategy.phase is RuntimePhase.PROBE

    def test_jarvis_reset_load_factors(self):
        strategy = JarvisStrategy(["a", "b"])
        strategy.runtime.load_factors = [0.7, 0.7]
        strategy.reset_load_factors()
        assert strategy.runtime.current_load_factors() == [0.0, 0.0]

    def test_lp_only_disables_finetune(self):
        strategy = LPOnlyStrategy(["a", "b"])
        assert strategy.config.adaptation.use_lp_init is True
        assert strategy.config.adaptation.use_finetune is False

    def test_no_lp_init_disables_lp(self):
        strategy = NoLPInitStrategy(["a", "b"])
        assert strategy.config.adaptation.use_lp_init is False
        assert strategy.config.adaptation.use_finetune is True

    def test_strategy_names_match_paper_labels(self):
        assert JarvisStrategy(["a"]).name == "Jarvis"
        assert LPOnlyStrategy(["a"]).name == "LP only"
        assert NoLPInitStrategy(["a"]).name == "w/o LP-init"
        assert AllSPStrategy().name == "All-SP"
        assert AllSrcStrategy().name == "All-Src"


class TestStrategyFactory:
    def test_factory_builds_every_documented_strategy(self, s2s_setup):
        from repro.analysis.experiments import STRATEGY_NAMES

        for name in STRATEGY_NAMES:
            strategy = make_strategy(name, s2s_setup, compute_budget=0.6)
            assert strategy.name == name

    def test_factory_rejects_unknown_names(self, s2s_setup):
        with pytest.raises(ConfigurationError):
            make_strategy("Magic", s2s_setup, 0.5)

    def test_ground_truth_profile_uses_setup_relays(self, s2s_setup):
        profile = ground_truth_profile(s2s_setup, compute_budget=0.7)
        assert profile.compute_budget == 0.7
        assert len(profile) == 3
        assert profile.relay_ratios[1] == pytest.approx(s2s_setup.count_relays[1])


class TestStaticProfileHelper:
    def test_length_mismatch_rejected(self):
        query = s2s_probe_query()
        operators = query.logical_plan().operators
        with pytest.raises(PartitioningError):
            static_profile(
                operators,
                s2s_cost_model(query),
                relay_ratios=[1.0],
                records_per_epoch=100,
                compute_budget=0.5,
            )
