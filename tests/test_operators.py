"""Unit tests for streaming operators."""

from __future__ import annotations

import pytest

from repro.errors import QueryDefinitionError
from repro.query.aggregates import AvgAggregate, CountAggregate, MaxAggregate, MinAggregate
from repro.query.operators import (
    AggregateOperator,
    FilterOperator,
    GroupApplyOperator,
    GroupAggregateOperator,
    JoinOperator,
    MapOperator,
    Operator,
    WindowOperator,
    make_tor_join,
)
from repro.query.records import IpToTorTable, PingmeshRecord, Record


def probes(n=10, err_every=None, base_rtt=100.0):
    records = []
    for i in range(n):
        err = 1 if err_every and i % err_every == 0 else 0
        records.append(PingmeshRecord(float(i), 1, 1000 + (i % 3), base_rtt + i, err_code=err))
    return records


class TestOperatorBase:
    def test_requires_name(self):
        with pytest.raises(QueryDefinitionError):
            FilterOperator("", lambda r: True)

    def test_rejects_non_positive_cost_hint(self):
        with pytest.raises(QueryDefinitionError):
            MapOperator("m", lambda r: r, cost_hint=0.0)

    def test_default_hooks_are_no_ops(self):
        op = WindowOperator("w", 10.0)
        assert op.partial_state() is None
        assert op.flush() == []
        op.merge_partial(None)  # must not raise


class TestWindowOperator:
    def test_passes_records_through(self):
        op = WindowOperator("w", 10.0)
        records = probes(5)
        assert op.process(records) == records

    def test_window_assignment(self):
        op = WindowOperator("w", 10.0)
        assert op.window_of(0.0) == (0.0, 10.0)
        assert op.window_of(9.99) == (0.0, 10.0)
        assert op.window_of(10.0) == (10.0, 20.0)

    def test_rejects_non_positive_length(self):
        with pytest.raises(QueryDefinitionError):
            WindowOperator("w", 0.0)

    def test_clone_preserves_length(self):
        op = WindowOperator("w", 5.0)
        assert op.clone().length_s == 5.0


class TestFilterOperator:
    def test_keeps_only_matching_records(self):
        op = FilterOperator("f", lambda r: r.err_code == 0)
        records = probes(10, err_every=2)
        out = op.process(records)
        assert len(out) == 5
        assert all(r.err_code == 0 for r in out)

    def test_clone_shares_predicate(self):
        op = FilterOperator("f", lambda r: True)
        clone = op.clone()
        assert clone is not op
        assert clone.predicate is op.predicate

    def test_empty_input(self):
        assert FilterOperator("f", lambda r: True).process([]) == []


class TestMapOperator:
    def test_one_to_one_transformation(self):
        op = MapOperator("m", lambda r: PingmeshRecord(r.event_time, r.src_ip, r.dst_ip, r.rtt_us * 2))
        out = op.process(probes(3))
        assert len(out) == 3
        assert out[0].rtt_us == pytest.approx(200.0)

    def test_none_results_are_dropped(self):
        op = MapOperator("m", lambda r: None if r.err_code else r)
        out = op.process(probes(10, err_every=2))
        assert len(out) == 5

    def test_list_results_are_flattened(self):
        op = MapOperator("m", lambda r: [r, r])
        assert len(op.process(probes(4))) == 8


class TestJoinOperator:
    def test_stream_table_join_enriches_records(self):
        table = IpToTorTable.dense(2000, servers_per_tor=100)
        op = make_tor_join("j", table, side="dst")
        out = op.process(probes(5))
        assert len(out) == 5
        assert all(r.dst_tor == r.dst_ip // 100 for r in out)

    def test_missing_keys_are_dropped(self):
        table = IpToTorTable({1000: 1})
        op = make_tor_join("j", table, side="dst")
        out = op.process(probes(9))  # dst ips 1000,1001,1002 cycling
        assert all(r.dst_ip == 1000 for r in out)

    def test_table_size_property(self):
        table = IpToTorTable.dense(123)
        op = make_tor_join("j", table, side="src")
        assert op.table_size == 123

    def test_invalid_side_rejected(self):
        with pytest.raises(QueryDefinitionError):
            make_tor_join("j", IpToTorTable.dense(10), side="middle")

    def test_chained_src_then_dst_join(self):
        table = IpToTorTable.dense(2000, servers_per_tor=100)
        src_join = make_tor_join("j1", table, side="src")
        dst_join = make_tor_join("j2", table, side="dst")
        out = dst_join.process(src_join.process(probes(4)))
        assert all(r.src_tor == 0 and r.dst_tor == 10 for r in out)

    def test_clone_shares_table(self):
        table = IpToTorTable.dense(10)
        op = make_tor_join("j", table, side="src")
        assert op.clone().table is table


class TestGroupApplyOperator:
    def test_accumulates_and_flushes_groups(self):
        op = GroupApplyOperator("g", lambda r: (r.dst_ip,))
        op.process(probes(9))
        assert op.group_count() == 3
        flushed = op.flush()
        assert len(flushed) == 9
        assert op.group_count() == 0

    def test_reset_clears_state(self):
        op = GroupApplyOperator("g", lambda r: (r.dst_ip,))
        op.process(probes(3))
        op.reset()
        assert op.group_count() == 0


class TestAggregateOperator:
    def test_global_aggregation_flush(self):
        op = AggregateOperator("agg", [AvgAggregate("rtt"), MaxAggregate("rtt")])
        op.process(probes(4))
        out = op.flush()
        assert len(out) == 1
        assert out[0].count == 4
        assert out[0].values["max(rtt)"] >= out[0].values["avg(rtt)"]

    def test_flush_on_empty_state_emits_nothing(self):
        op = AggregateOperator("agg", [CountAggregate("rtt")])
        assert op.flush() == []

    def test_requires_at_least_one_aggregate(self):
        with pytest.raises(QueryDefinitionError):
            AggregateOperator("agg", [])

    def test_merge_partial_combines_states(self):
        a = AggregateOperator("agg", [CountAggregate("rtt")])
        b = AggregateOperator("agg", [CountAggregate("rtt")])
        a.process(probes(3))
        b.process(probes(5))
        a.merge_partial(b.partial_state())
        out = a.flush()
        assert out[0].count == 8

    def test_merge_partial_rejects_wrong_type(self):
        op = AggregateOperator("agg", [CountAggregate("rtt")])
        with pytest.raises(QueryDefinitionError):
            op.merge_partial("bogus")


class TestGroupAggregateOperator:
    def make_op(self):
        return GroupAggregateOperator(
            "g+r",
            key_fn=lambda r: (r.src_ip, r.dst_ip),
            aggregates=[AvgAggregate("rtt"), MaxAggregate("rtt"), MinAggregate("rtt")],
        )

    def test_grouping_and_aggregation(self):
        op = self.make_op()
        op.process(probes(9))
        assert op.group_count() == 3
        rows = op.flush()
        assert len(rows) == 3
        for row in rows:
            assert row.values["min(rtt)"] <= row.values["avg(rtt)"] <= row.values["max(rtt)"]

    def test_flush_clears_groups(self):
        op = self.make_op()
        op.process(probes(6))
        op.flush()
        assert op.group_count() == 0
        assert op.flush() == []

    def test_incremental_flag_reflects_aggregates(self):
        assert self.make_op().incremental is True

    def test_merge_partial_equals_processing_everything_in_one_place(self):
        """Source-side + SP-side partials must merge to the exact answer."""
        records = probes(30)
        reference = self.make_op()
        reference.process(records)
        expected = {r.group_key: r.values for r in reference.flush()}

        source = self.make_op()
        remote = self.make_op()
        source.process(records[:17])
        remote.process(records[17:])
        remote.merge_partial(source.partial_state())
        merged = {r.group_key: r.values for r in remote.flush()}

        assert merged.keys() == expected.keys()
        for key in expected:
            for column, value in expected[key].items():
                assert merged[key][column] == pytest.approx(value)

    def test_merge_partial_rejects_wrong_type(self):
        with pytest.raises(QueryDefinitionError):
            self.make_op().merge_partial(42)

    def test_requires_aggregates(self):
        with pytest.raises(QueryDefinitionError):
            GroupAggregateOperator("g", lambda r: (), [])

    def test_clone_has_fresh_state(self):
        op = self.make_op()
        op.process(probes(3))
        clone = op.clone()
        assert clone.group_count() == 0
        assert op.group_count() > 0

    def test_default_value_fn_extracts_rtt_in_ms(self):
        op = self.make_op()
        op.process([PingmeshRecord(0.0, 1, 2, rtt_us=2000.0)])
        row = op.flush()[0]
        assert row.values["avg(rtt)"] == pytest.approx(2.0)
