"""Batched/arena (columnar) vs object execution mode: bit-exact equivalence.

The simulators select their hot-path record representation through the
``record_mode`` knob (:class:`~repro.simulation.executor.ExecutorConfig` /
:class:`~repro.simulation.multisource.MultiSourceConfig`).  The batched and
arena modes exist purely for speed; these tests pin down that each
reproduces the object mode's metrics *bit-exactly* — not approximately — on
the configurations the evaluation figures run (Fig. 10 multi-source/sharded,
Fig. 11 co-located), that the :class:`~repro.query.records.FleetArena`
container honours its aliasing/ownership contract, that the columnar
containers survive empty inputs, and that record conservation holds in the
fast modes under arbitrary fleets (hypothesis property).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.experiments import (
    make_setup,
    make_strategy,
    multi_query_colocation_sweep,
    run_multi_query,
    run_multi_source,
    run_sharded,
)
from repro.baselines import AllSPStrategy
from repro.query.aggregates import (
    AvgAggregate,
    CountAggregate,
    MaxAggregate,
    MinAggregate,
    SumAggregate,
)
from repro.query.records import (
    FleetArena,
    PingmeshRecord,
    RecordBatch,
    RecordRowView,
    record_size_bytes,
)
from repro.simulation.engine import EpochEngine, RECORD_MODES, validate_record_mode
from repro.simulation.executor import BuildingBlockExecutor, ExecutorConfig
from repro.simulation.multisource import (
    MultiSourceConfig,
    MultiSourceExecutor,
    homogeneous_sources,
)
from repro.simulation.network import plan_fifo_transfer
from repro.simulation.node import StreamProcessorNode
from repro.simulation.sharding import ShardedClusterExecutor
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def setup():
    return make_setup("s2s_probe", records_per_epoch=120)


def fleet(setup, num_sources, strategy_name="Jarvis", seed=10, budget=0.55):
    return homogeneous_sources(
        num_sources,
        workload_factory=lambda i: setup.workload_factory(seed + i),
        strategy_factory=lambda i: make_strategy(strategy_name, setup, budget),
        budget=budget,
    )


def assert_epochs_identical(object_run, batched_run):
    """Every epoch metric of every source must match bit-for-bit."""
    assert object_run.source_names() == batched_run.source_names()
    for name in object_run.source_names():
        obj_epochs = object_run.per_source[name].epochs
        bat_epochs = batched_run.per_source[name].epochs
        assert len(obj_epochs) == len(bat_epochs)
        for obj, bat in zip(obj_epochs, bat_epochs):
            assert obj == bat, (name, obj, bat)


class TestRecordModeValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            validate_record_mode("vectorized")
        with pytest.raises(SimulationError):
            MultiSourceConfig(record_mode="columns")
        with pytest.raises(SimulationError):
            ExecutorConfig(record_mode="columns")

    def test_all_advertised_modes_accepted(self):
        assert RECORD_MODES == ("object", "batched", "arena")
        for mode in RECORD_MODES:
            validate_record_mode(mode)
            MultiSourceConfig(record_mode=mode)
            ExecutorConfig(record_mode=mode)


class TestRecordBatchContainer:
    def batch(self, n=10):
        workload = make_setup(
            "s2s_probe", records_per_epoch=n
        ).workload_factory(3)
        return workload.batch_for_epoch(0)

    def test_matches_materialized_records(self):
        batch = self.batch(16)
        records = batch.to_records()
        assert len(records) == len(batch) == 16
        for view, record in zip(batch, records):
            assert isinstance(record, PingmeshRecord)
            assert view.as_dict() == record.as_dict()
        assert record_size_bytes(batch) == record_size_bytes(records)
        assert record_size_bytes(batch, drain=True) == record_size_bytes(
            records, drain=True
        )

    def test_slicing_concat_take_compress(self):
        batch = self.batch(12)
        head, tail = batch[:5], batch[5:]
        assert len(head) == 5 and len(tail) == 7
        rejoined = head + tail
        assert [v.event_time for v in rejoined] == [v.event_time for v in batch]
        assert batch[0:12] is batch  # whole-batch slices alias
        taken = batch.take([0, 3, 4])
        assert [v.dst_ip for v in taken] == [
            batch.columns["dst_ip"][i] for i in (0, 3, 4)
        ]
        mask = [i % 2 == 0 for i in range(12)]
        assert len(batch.compress(mask)) == 6
        # Empty-list concatenation keeps the container columnar.
        assert ([] + batch) is batch
        assert (batch + []) is batch

    def test_from_records_round_trip(self):
        records = self.batch(8).to_records()
        rebuilt = RecordBatch.from_records(records)
        assert rebuilt.uniform_size_bytes == records[0].size_bytes
        assert [v.as_dict() for v in rebuilt] == [r.as_dict() for r in records]

    def test_row_view_attribute_access(self):
        batch = self.batch(4)
        view = RecordRowView(batch)
        assert view.at(2).err_code == batch.columns["err_code"][2]
        assert getattr(view, "no_such_field", "fallback") == "fallback"
        assert view.size_bytes == batch.uniform_size_bytes


class TestPlanFifoTransfer:
    def test_uniform_matches_sizes_walk(self):
        for budget in (0.0, 85.9, 86.0, 200.0, 86.0 * 7, 1e9):
            uniform = plan_fifo_transfer(7, budget, uniform_size=86)
            walked = plan_fifo_transfer(7, budget, sizes=[86] * 7)
            assert uniform == walked

    def test_partial_progress_resumes(self):
        first = plan_fifo_transfer(3, 100.0, uniform_size=90)
        assert first.completed_records == 1
        assert first.new_progress_bytes == pytest.approx(10.0)
        second = plan_fifo_transfer(
            2, 80.0, progress_bytes=first.new_progress_bytes, uniform_size=90
        )
        assert second.completed_records == 1
        assert second.completed_bytes == 90

    def test_zero_budget_ships_nothing(self):
        plan = plan_fifo_transfer(5, 0.0, uniform_size=86)
        assert plan.completed_records == 0
        assert plan.sent_bytes == 0.0
        assert plan.new_progress_bytes == 0.0


class TestMultiSourceEquivalence:
    """Fig. 10 configurations: the fast modes must equal object bit-for-bit."""

    @pytest.mark.parametrize("strategy_name", ["Jarvis", "Best-OP"])
    def test_fig10_multi_source_bit_exact(self, setup, strategy_name):
        runs = {}
        for mode in RECORD_MODES:
            runs[mode] = run_multi_source(
                setup,
                strategy_name,
                0.55,
                num_sources=6,
                num_epochs=14,  # crosses a 10-epoch window boundary
                warmup_epochs=4,
                record_mode=mode,
            )
        obj = runs["object"]
        for mode in ("batched", "arena"):
            fast = runs[mode]
            assert (
                obj.aggregate_throughput_mbps() == fast.aggregate_throughput_mbps()
            ), mode
            assert obj.aggregate_offered_mbps() == fast.aggregate_offered_mbps(), mode
            assert obj.network_utilization() == fast.network_utilization(), mode
            assert obj.median_latency_s() == fast.median_latency_s(), mode
            assert_epochs_identical(obj, fast)

    @pytest.mark.parametrize("record_mode", ["batched", "arena"])
    def test_fast_mode_run_conserves_records(self, setup, record_mode):
        executor = MultiSourceExecutor(
            plan=setup.plan,
            cost_model=setup.cost_model,
            sources=fleet(setup, 4),
            cluster_config=MultiSourceConfig(
                config=setup.config,
                stream_processor=StreamProcessorNode(ingress_bandwidth_mbps=30.0),
                record_mode=record_mode,
            ),
        )
        for _ in range(13):
            executor.run_epoch()
        assert executor.verify_record_conservation() == []

    def test_sharded_fig10_bit_exact(self, setup):
        runs = {
            mode: run_sharded(
                setup,
                "Jarvis",
                0.55,
                num_sources=6,
                num_blocks=2,
                num_epochs=12,
                warmup_epochs=4,
                record_mode=mode,
            )
            for mode in RECORD_MODES
        }
        obj = runs["object"]
        for mode in ("batched", "arena"):
            fast = runs[mode]
            assert (
                obj.aggregate_throughput_mbps() == fast.aggregate_throughput_mbps()
            ), mode
            assert_epochs_identical(obj, fast)

    def test_generic_workload_falls_back_to_from_records(self, setup):
        """A workload without ``batch_for_epoch`` still runs batched mode."""

        class PlainWorkload:
            def __init__(self, inner):
                self.inner = inner

            def records_for_epoch(self, epoch):
                return self.inner.records_for_epoch(epoch)

        runs = {}
        for mode in RECORD_MODES:
            specs = homogeneous_sources(
                3,
                workload_factory=lambda i: PlainWorkload(
                    setup.workload_factory(20 + i)
                ),
                strategy_factory=lambda i: AllSPStrategy(),
                budget=1.0,
            )
            executor = MultiSourceExecutor(
                plan=setup.plan,
                cost_model=setup.cost_model,
                sources=specs,
                cluster_config=MultiSourceConfig(
                    config=setup.config, record_mode=mode
                ),
            )
            runs[mode] = executor.run(8, warmup_epochs=2)
        for mode in ("batched", "arena"):
            assert (
                runs["object"].aggregate_throughput_mbps()
                == runs[mode].aggregate_throughput_mbps()
            ), mode
            assert_epochs_identical(runs["object"], runs[mode])


class TestBuildingBlockEquivalence:
    @pytest.mark.parametrize("strategy_name", ["Jarvis", "All-SP", "Best-OP"])
    def test_single_block_bit_exact(self, setup, strategy_name):
        runs = {}
        for mode in RECORD_MODES:
            executor = BuildingBlockExecutor(
                plan=setup.plan,
                workload=setup.workload_factory(5),
                cost_model=setup.cost_model,
                strategy=make_strategy(strategy_name, setup, 0.55),
                budget=0.55,
                executor_config=ExecutorConfig(
                    config=setup.config,
                    bandwidth_mbps=setup.bandwidth_mbps,
                    record_mode=mode,
                ),
            )
            runs[mode] = executor.run(14, warmup_epochs=4)
        obj = runs["object"]
        for mode in ("batched", "arena"):
            fast = runs[mode]
            assert obj.throughput_mbps() == fast.throughput_mbps(), mode
            assert obj.offered_mbps() == fast.offered_mbps(), mode
            for obj_epoch, fast_epoch in zip(obj.epochs, fast.epochs):
                assert obj_epoch == fast_epoch, mode


class TestColocatedEquivalence:
    """Fig. 11 configuration: the co-located sweep must be mode-agnostic."""

    def test_fig11_colocated_bit_exact(self, setup):
        runs = {
            mode: run_multi_query(
                setup,
                num_queries=3,
                per_query_budget=0.4,
                load_factors=[1.0, 1.0, 0.6],
                num_epochs=12,
                warmup_epochs=4,
                record_mode=mode,
            )
            for mode in RECORD_MODES
        }
        obj = runs["object"]
        for mode in ("batched", "arena"):
            fast = runs[mode]
            assert (
                obj.aggregate_throughput_mbps() == fast.aggregate_throughput_mbps()
            ), mode
            assert obj.median_latency_s() == fast.median_latency_s(), mode
            assert sorted(obj.per_query.keys()) == sorted(fast.per_query.keys())
            for name, obj_cluster in obj.per_query.items():
                fast_cluster = fast.per_query[name]
                assert (
                    obj_cluster.aggregate_throughput_mbps()
                    == fast_cluster.aggregate_throughput_mbps()
                ), (mode, name)
                assert_epochs_identical(obj_cluster, fast_cluster)

    def test_fig11_sweep_rows_bit_exact(self):
        rows = {
            mode: multi_query_colocation_sweep(
                query_counts=(1, 2),
                records_per_epoch=80,
                num_epochs=8,
                warmup_epochs=2,
                mode="simulated",
                record_mode=mode,
            )
            for mode in RECORD_MODES
        }
        assert rows["object"] == rows["batched"] == rows["arena"]


class TestFleetArenaContainer:
    """The arena's aliasing/ownership/recycling contract, in isolation."""

    def batch(self, setup, n, seed=3):
        return setup.workload_factory(seed).batch_for_epoch(0)[:n]

    def test_views_alias_block_buffers_and_spans_stack(self, setup):
        arena = FleetArena()
        arena.begin_epoch(0)
        a, b = self.batch(setup, 7, seed=3), self.batch(setup, 5, seed=4)
        assert arena.append_batch(0, a)
        assert arena.append_batch(1, b)
        assert arena.span(0) == (0, 7)
        assert arena.span(1) == (7, 12)
        view = arena.view(0)
        for name, column in view.columns.items():
            assert arena.aliases(column), name
            assert np.array_equal(column, np.asarray(a.columns[name])), name
        assert arena.source_ids[:12].tolist() == [0] * 7 + [1] * 5
        assert arena.epochs[:12].tolist() == [0] * 12

    def test_epoch_recycling_reuses_buffers(self, setup):
        arena = FleetArena()
        arena.begin_epoch(0)
        assert arena.append_batch(0, self.batch(setup, 9))
        base = arena.view(0).columns["event_time"].base
        assert base is not None
        arena.begin_epoch(1)
        # The idle source keeps an (empty) view — the schema survives the
        # epoch boundary even though the rows were recycled.
        assert arena.span(0) == (0, 0)
        assert len(arena.view(0)) == 0
        assert arena.append_batch(0, self.batch(setup, 9, seed=5))
        # Allocation-free steady state: the refill lands in the same buffer.
        assert arena.view(0).columns["event_time"].base is base

    def test_growth_preserves_earlier_rows(self, setup):
        arena = FleetArena()
        arena.begin_epoch(0)
        first = self.batch(setup, 3)
        assert arena.append_batch(0, first)
        big = self.batch(setup, 120, seed=6)
        for source_id in range(1, 40):  # force several _grow() doublings
            assert arena.append_batch(source_id, big)
        view = arena.view(0)
        for name, column in view.columns.items():
            assert np.array_equal(column, np.asarray(first.columns[name])), name

    def test_own_copies_only_aliasing_columns(self, setup):
        arena = FleetArena()
        arena.begin_epoch(0)
        assert arena.append_batch(0, self.batch(setup, 6))
        view = arena.view(0)
        owned = arena.own(view)
        assert owned is not view
        for name, column in owned.columns.items():
            assert not arena.aliases(column), name
            assert np.array_equal(column, view.columns[name]), name
        # Already-detached batches pass through untouched.
        assert arena.own(owned) is owned

    def test_schema_strictness_refuses_incompatible_batches(self, setup):
        arena = FleetArena()
        arena.begin_epoch(0)
        good = self.batch(setup, 4)
        assert arena.append_batch(0, good)
        # One reservation per source per epoch.
        assert not arena.append_batch(0, good)
        # Ragged per-record sizes stay out of the arena.
        ragged = RecordBatch(
            good.record_class,
            {k: np.asarray(v).copy() for k, v in good.columns.items()},
            sizes=[86, 86, 86, 86],
        )
        assert not arena.append_batch(1, ragged)
        # A source the arena has never seen still reads as an empty view
        # once a schema exists (migration-drained sources hit this path).
        unknown = arena.view(99)
        assert unknown is not None and len(unknown) == 0

    def test_fresh_arena_has_no_schema(self):
        arena = FleetArena()
        arena.begin_epoch(0)
        assert arena.view(0) is None
        assert arena.span(0) == (0, 0)


class TestEmptyInputEdgeCases:
    """Zero-row batches and empty folds must behave like their object
    equivalents (an idle epoch, a drained source, an empty window)."""

    def empty(self, setup):
        return setup.workload_factory(3).batch_for_epoch(0)[:0]

    def test_empty_batch_container_operations(self, setup):
        empty = self.empty(setup)
        full = setup.workload_factory(3).batch_for_epoch(0)
        assert len(empty) == 0
        assert empty.to_records() == []
        assert record_size_bytes(empty) == 0
        # Concat in both orders, on both sides of emptiness.
        assert len(empty + self.empty(setup)) == 0
        rejoined = empty + full
        assert [v.event_time for v in rejoined] == [v.event_time for v in full]
        rejoined = full + empty
        assert [v.event_time for v in rejoined] == [v.event_time for v in full]
        # take/compress on zero rows.
        assert len(empty.take([])) == 0
        assert len(empty.compress([])) == 0
        assert len(full.take([])) == 0
        assert len(full.compress([False] * len(full))) == 0

    def test_add_many_empty_sequence_is_identity(self):
        for aggregate in (
            SumAggregate("x"),
            CountAggregate("x"),
            MinAggregate("x"),
            MaxAggregate("x"),
            AvgAggregate("x"),
        ):
            state = aggregate.create()
            seeded = aggregate.add(aggregate.create(), 3.5)
            for empty_values in ([], np.asarray([], dtype=np.float64)):
                assert aggregate.add_many(state, empty_values) == state
                assert aggregate.add_many(seeded, empty_values) == seeded

    def test_arena_engine_steps_an_idle_source(self, setup):
        """A source whose workload produces no records still steps cleanly
        through the arena path (the migration-drain shape)."""

        class IdleWorkload:
            def records_for_epoch(self, epoch):
                return []

        engine = EpochEngine(
            cost_model=setup.cost_model,
            config=setup.config,
            record_mode="arena",
        )
        engine.add_source(
            name="busy",
            workload=setup.workload_factory(1),
            strategy=AllSPStrategy(),
            budget=1.0,
            plan=setup.plan,
        )
        engine.add_source(
            name="idle",
            workload=IdleWorkload(),
            strategy=AllSPStrategy(),
            budget=1.0,
            plan=setup.plan,
        )
        for _ in range(3):
            steps = {step.state.name: step for step in engine.step_sources()}
            assert steps["busy"].result.records_in == 120
            assert steps["idle"].result.records_in == 0


class TestFastModeConservationProperty:
    @pytest.mark.parametrize("record_mode", ["batched", "arena"])
    @given(
        num_sources=st.integers(min_value=1, max_value=4),
        records_per_epoch=st.integers(min_value=1, max_value=60),
        num_epochs=st.integers(min_value=1, max_value=12),
        budget=st.floats(min_value=0.0, max_value=1.0),
        ingress_mbps=st.sampled_from([0.5, 2.0, 30.0]),
    )
    @settings(max_examples=20, deadline=None)
    def test_record_conservation_in_fast_modes(
        self,
        record_mode,
        num_sources,
        records_per_epoch,
        num_epochs,
        budget,
        ingress_mbps,
    ):
        """Every injected record is accounted for exactly once, whatever the
        fleet shape, budget, or link capacity — in both fast modes."""
        setup = make_setup("s2s_probe", records_per_epoch=records_per_epoch)
        specs = homogeneous_sources(
            num_sources,
            workload_factory=lambda i: setup.workload_factory(40 + i),
            strategy_factory=lambda i: make_strategy("Jarvis", setup, max(budget, 0.05)),
            budget=budget,
        )
        executor = MultiSourceExecutor(
            plan=setup.plan,
            cost_model=setup.cost_model,
            sources=specs,
            cluster_config=MultiSourceConfig(
                config=setup.config,
                stream_processor=StreamProcessorNode(
                    ingress_bandwidth_mbps=ingress_mbps
                ),
                record_mode=record_mode,
            ),
        )
        for _ in range(num_epochs):
            executor.run_epoch()
        assert executor.verify_record_conservation() == []


class TestCrossModeMigrationProperty:
    @given(
        num_sources=st.integers(min_value=2, max_value=4),
        records_per_epoch=st.integers(min_value=5, max_value=40),
        moves=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=8),  # epoch of the move
                st.integers(min_value=0, max_value=3),  # source index (mod fleet)
            ),
            max_size=3,
        ),
        ingress_mbps=st.sampled_from([0.05, 0.5, 30.0]),
    )
    @settings(max_examples=8, deadline=None)
    def test_modes_identical_under_random_migration_schedules(
        self, num_sources, records_per_epoch, moves, ingress_mbps
    ):
        """All three record modes agree bit-for-bit on every per-source epoch
        metric under a random fleet and a random live-migration schedule, and
        each conserves records throughout."""
        schedule = sorted((epoch, index % num_sources) for epoch, index in moves)
        setup = make_setup("s2s_probe", records_per_epoch=records_per_epoch)
        runs = {}
        for mode in RECORD_MODES:
            executor = ShardedClusterExecutor(
                plan=setup.plan,
                cost_model=setup.cost_model,
                sources=fleet(setup, num_sources, seed=30),
                num_blocks=2,
                cluster_config=MultiSourceConfig(
                    config=setup.config,
                    stream_processor=StreamProcessorNode(
                        ingress_bandwidth_mbps=ingress_mbps
                    ),
                    record_mode=mode,
                ),
            )
            per_epoch = []
            for epoch in range(10):
                for move_epoch, index in schedule:
                    if move_epoch == epoch:
                        name = f"source-{index}"
                        executor.migrate(name, 1 - executor.block_of(name))
                per_epoch.append(executor.run_epoch())
            assert executor.verify_record_conservation() == [], mode
            runs[mode] = per_epoch
        for mode in ("batched", "arena"):
            for obj_epoch, fast_epoch in zip(runs["object"], runs[mode]):
                assert obj_epoch == fast_epoch, mode


class TestEngineSingleHome:
    """The accounting helpers must exist in exactly one module."""

    def test_executors_share_the_engine(self, setup):
        # Enforced AST-accurately by simlint's SL001 (accounting-single-home)
        # so this test and the linter can never disagree: no simulation/
        # module other than engine.py may construct EpochMetrics or
        # EpochObservation, call classify_query_state, re-derive the
        # half-epoch batching-delay term, or redefine the accountant helpers.
        import inspect

        from simlint import lint_source, rules_by_id
        from repro.simulation import engine, executor, multiquery, multisource

        engine_src = inspect.getsource(engine)
        assert "def goodput_bytes" in engine_src
        assert "def finish_source_epoch" in engine_src
        (sl001,) = rules_by_id(["SL001"])
        for module in (executor, multisource, multiquery):
            violations = lint_source(
                inspect.getsource(module),
                display_path=module.__file__,
                module_path="repro/simulation/"
                + module.__name__.rsplit(".", 1)[-1]
                + ".py",
                rules=[sl001],
            )
            assert violations == [], [v.render() for v in violations]

    def test_engine_steps_any_executor_source(self, setup):
        engine = EpochEngine(cost_model=setup.cost_model, config=setup.config)
        engine.add_source(
            name="s",
            workload=setup.workload_factory(1),
            strategy=AllSPStrategy(),
            budget=1.0,
            plan=setup.plan,
        )
        (step,) = engine.step_sources()
        assert step.result.records_in == 120
        assert engine.epochs_run == 1
        with pytest.raises(SimulationError):
            engine.ensure_fresh()
