"""Batched (columnar) vs object execution mode: bit-exact equivalence.

The simulators select their hot-path record representation through the
``record_mode`` knob (:class:`~repro.simulation.executor.ExecutorConfig` /
:class:`~repro.simulation.multisource.MultiSourceConfig`).  The batched mode
exists purely for speed; these tests pin down that it reproduces the object
mode's metrics *bit-exactly* — not approximately — on the configurations the
evaluation figures run (Fig. 10 multi-source/sharded, Fig. 11 co-located),
and that record conservation holds in batched mode under arbitrary fleets
(hypothesis property).
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.experiments import (
    make_setup,
    make_strategy,
    multi_query_colocation_sweep,
    run_multi_query,
    run_multi_source,
    run_sharded,
)
from repro.baselines import AllSPStrategy
from repro.query.records import (
    PingmeshRecord,
    RecordBatch,
    RecordRowView,
    record_size_bytes,
)
from repro.simulation.engine import EpochEngine, validate_record_mode
from repro.simulation.executor import BuildingBlockExecutor, ExecutorConfig
from repro.simulation.multisource import (
    MultiSourceConfig,
    MultiSourceExecutor,
    homogeneous_sources,
)
from repro.simulation.network import plan_fifo_transfer
from repro.simulation.node import StreamProcessorNode
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def setup():
    return make_setup("s2s_probe", records_per_epoch=120)


def fleet(setup, num_sources, strategy_name="Jarvis", seed=10, budget=0.55):
    return homogeneous_sources(
        num_sources,
        workload_factory=lambda i: setup.workload_factory(seed + i),
        strategy_factory=lambda i: make_strategy(strategy_name, setup, budget),
        budget=budget,
    )


def assert_epochs_identical(object_run, batched_run):
    """Every epoch metric of every source must match bit-for-bit."""
    assert object_run.source_names() == batched_run.source_names()
    for name in object_run.source_names():
        obj_epochs = object_run.per_source[name].epochs
        bat_epochs = batched_run.per_source[name].epochs
        assert len(obj_epochs) == len(bat_epochs)
        for obj, bat in zip(obj_epochs, bat_epochs):
            assert obj == bat, (name, obj, bat)


class TestRecordModeValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            validate_record_mode("vectorized")
        with pytest.raises(SimulationError):
            MultiSourceConfig(record_mode="columns")
        with pytest.raises(SimulationError):
            ExecutorConfig(record_mode="columns")


class TestRecordBatchContainer:
    def batch(self, n=10):
        workload = make_setup(
            "s2s_probe", records_per_epoch=n
        ).workload_factory(3)
        return workload.batch_for_epoch(0)

    def test_matches_materialized_records(self):
        batch = self.batch(16)
        records = batch.to_records()
        assert len(records) == len(batch) == 16
        for view, record in zip(batch, records):
            assert isinstance(record, PingmeshRecord)
            assert view.as_dict() == record.as_dict()
        assert record_size_bytes(batch) == record_size_bytes(records)
        assert record_size_bytes(batch, drain=True) == record_size_bytes(
            records, drain=True
        )

    def test_slicing_concat_take_compress(self):
        batch = self.batch(12)
        head, tail = batch[:5], batch[5:]
        assert len(head) == 5 and len(tail) == 7
        rejoined = head + tail
        assert [v.event_time for v in rejoined] == [v.event_time for v in batch]
        assert batch[0:12] is batch  # whole-batch slices alias
        taken = batch.take([0, 3, 4])
        assert [v.dst_ip for v in taken] == [
            batch.columns["dst_ip"][i] for i in (0, 3, 4)
        ]
        mask = [i % 2 == 0 for i in range(12)]
        assert len(batch.compress(mask)) == 6
        # Empty-list concatenation keeps the container columnar.
        assert ([] + batch) is batch
        assert (batch + []) is batch

    def test_from_records_round_trip(self):
        records = self.batch(8).to_records()
        rebuilt = RecordBatch.from_records(records)
        assert rebuilt.uniform_size_bytes == records[0].size_bytes
        assert [v.as_dict() for v in rebuilt] == [r.as_dict() for r in records]

    def test_row_view_attribute_access(self):
        batch = self.batch(4)
        view = RecordRowView(batch)
        assert view.at(2).err_code == batch.columns["err_code"][2]
        assert getattr(view, "no_such_field", "fallback") == "fallback"
        assert view.size_bytes == batch.uniform_size_bytes


class TestPlanFifoTransfer:
    def test_uniform_matches_sizes_walk(self):
        for budget in (0.0, 85.9, 86.0, 200.0, 86.0 * 7, 1e9):
            uniform = plan_fifo_transfer(7, budget, uniform_size=86)
            walked = plan_fifo_transfer(7, budget, sizes=[86] * 7)
            assert uniform == walked

    def test_partial_progress_resumes(self):
        first = plan_fifo_transfer(3, 100.0, uniform_size=90)
        assert first.completed_records == 1
        assert first.new_progress_bytes == pytest.approx(10.0)
        second = plan_fifo_transfer(
            2, 80.0, progress_bytes=first.new_progress_bytes, uniform_size=90
        )
        assert second.completed_records == 1
        assert second.completed_bytes == 90

    def test_zero_budget_ships_nothing(self):
        plan = plan_fifo_transfer(5, 0.0, uniform_size=86)
        assert plan.completed_records == 0
        assert plan.sent_bytes == 0.0
        assert plan.new_progress_bytes == 0.0


class TestMultiSourceEquivalence:
    """Fig. 10 configurations: batched must equal object bit-for-bit."""

    @pytest.mark.parametrize("strategy_name", ["Jarvis", "Best-OP"])
    def test_fig10_multi_source_bit_exact(self, setup, strategy_name):
        runs = {}
        for mode in ("object", "batched"):
            runs[mode] = run_multi_source(
                setup,
                strategy_name,
                0.55,
                num_sources=6,
                num_epochs=14,  # crosses a 10-epoch window boundary
                warmup_epochs=4,
                record_mode=mode,
            )
        obj, bat = runs["object"], runs["batched"]
        assert obj.aggregate_throughput_mbps() == bat.aggregate_throughput_mbps()
        assert obj.aggregate_offered_mbps() == bat.aggregate_offered_mbps()
        assert obj.network_utilization() == bat.network_utilization()
        assert obj.median_latency_s() == bat.median_latency_s()
        assert_epochs_identical(obj, bat)

    def test_batched_run_conserves_records(self, setup):
        executor = MultiSourceExecutor(
            plan=setup.plan,
            cost_model=setup.cost_model,
            sources=fleet(setup, 4),
            cluster_config=MultiSourceConfig(
                config=setup.config,
                stream_processor=StreamProcessorNode(ingress_bandwidth_mbps=30.0),
                record_mode="batched",
            ),
        )
        for _ in range(13):
            executor.run_epoch()
        assert executor.verify_record_conservation() == []

    def test_sharded_fig10_bit_exact(self, setup):
        runs = {
            mode: run_sharded(
                setup,
                "Jarvis",
                0.55,
                num_sources=6,
                num_blocks=2,
                num_epochs=12,
                warmup_epochs=4,
                record_mode=mode,
            )
            for mode in ("object", "batched")
        }
        obj, bat = runs["object"], runs["batched"]
        assert obj.aggregate_throughput_mbps() == bat.aggregate_throughput_mbps()
        assert_epochs_identical(obj, bat)

    def test_generic_workload_falls_back_to_from_records(self, setup):
        """A workload without ``batch_for_epoch`` still runs batched mode."""

        class PlainWorkload:
            def __init__(self, inner):
                self.inner = inner

            def records_for_epoch(self, epoch):
                return self.inner.records_for_epoch(epoch)

        runs = {}
        for mode in ("object", "batched"):
            specs = homogeneous_sources(
                3,
                workload_factory=lambda i: PlainWorkload(
                    setup.workload_factory(20 + i)
                ),
                strategy_factory=lambda i: AllSPStrategy(),
                budget=1.0,
            )
            executor = MultiSourceExecutor(
                plan=setup.plan,
                cost_model=setup.cost_model,
                sources=specs,
                cluster_config=MultiSourceConfig(
                    config=setup.config, record_mode=mode
                ),
            )
            runs[mode] = executor.run(8, warmup_epochs=2)
        assert (
            runs["object"].aggregate_throughput_mbps()
            == runs["batched"].aggregate_throughput_mbps()
        )
        assert_epochs_identical(runs["object"], runs["batched"])


class TestBuildingBlockEquivalence:
    @pytest.mark.parametrize("strategy_name", ["Jarvis", "All-SP", "Best-OP"])
    def test_single_block_bit_exact(self, setup, strategy_name):
        runs = {}
        for mode in ("object", "batched"):
            executor = BuildingBlockExecutor(
                plan=setup.plan,
                workload=setup.workload_factory(5),
                cost_model=setup.cost_model,
                strategy=make_strategy(strategy_name, setup, 0.55),
                budget=0.55,
                executor_config=ExecutorConfig(
                    config=setup.config,
                    bandwidth_mbps=setup.bandwidth_mbps,
                    record_mode=mode,
                ),
            )
            runs[mode] = executor.run(14, warmup_epochs=4)
        obj, bat = runs["object"], runs["batched"]
        assert obj.throughput_mbps() == bat.throughput_mbps()
        assert obj.offered_mbps() == bat.offered_mbps()
        for obj_epoch, bat_epoch in zip(obj.epochs, bat.epochs):
            assert obj_epoch == bat_epoch


class TestColocatedEquivalence:
    """Fig. 11 configuration: the co-located sweep must be mode-agnostic."""

    def test_fig11_colocated_bit_exact(self, setup):
        runs = {
            mode: run_multi_query(
                setup,
                num_queries=3,
                per_query_budget=0.4,
                load_factors=[1.0, 1.0, 0.6],
                num_epochs=12,
                warmup_epochs=4,
                record_mode=mode,
            )
            for mode in ("object", "batched")
        }
        obj, bat = runs["object"], runs["batched"]
        assert obj.aggregate_throughput_mbps() == bat.aggregate_throughput_mbps()
        assert obj.median_latency_s() == bat.median_latency_s()
        assert sorted(obj.per_query.keys()) == sorted(bat.per_query.keys())
        for name, obj_cluster in obj.per_query.items():
            bat_cluster = bat.per_query[name]
            assert (
                obj_cluster.aggregate_throughput_mbps()
                == bat_cluster.aggregate_throughput_mbps()
            )
            assert_epochs_identical(obj_cluster, bat_cluster)

    def test_fig11_sweep_rows_bit_exact(self):
        rows = {
            mode: multi_query_colocation_sweep(
                query_counts=(1, 2),
                records_per_epoch=80,
                num_epochs=8,
                warmup_epochs=2,
                mode="simulated",
                record_mode=mode,
            )
            for mode in ("object", "batched")
        }
        assert rows["object"] == rows["batched"]


class TestBatchedConservationProperty:
    @given(
        num_sources=st.integers(min_value=1, max_value=4),
        records_per_epoch=st.integers(min_value=1, max_value=60),
        num_epochs=st.integers(min_value=1, max_value=12),
        budget=st.floats(min_value=0.0, max_value=1.0),
        ingress_mbps=st.sampled_from([0.5, 2.0, 30.0]),
    )
    @settings(max_examples=20, deadline=None)
    def test_record_conservation_in_batched_mode(
        self, num_sources, records_per_epoch, num_epochs, budget, ingress_mbps
    ):
        """Every injected record is accounted for exactly once, whatever the
        fleet shape, budget, or link capacity — in batched mode."""
        setup = make_setup("s2s_probe", records_per_epoch=records_per_epoch)
        specs = homogeneous_sources(
            num_sources,
            workload_factory=lambda i: setup.workload_factory(40 + i),
            strategy_factory=lambda i: make_strategy("Jarvis", setup, max(budget, 0.05)),
            budget=budget,
        )
        executor = MultiSourceExecutor(
            plan=setup.plan,
            cost_model=setup.cost_model,
            sources=specs,
            cluster_config=MultiSourceConfig(
                config=setup.config,
                stream_processor=StreamProcessorNode(
                    ingress_bandwidth_mbps=ingress_mbps
                ),
                record_mode="batched",
            ),
        )
        for _ in range(num_epochs):
            executor.run_epoch()
        assert executor.verify_record_conservation() == []


class TestEngineSingleHome:
    """The accounting helpers must exist in exactly one module."""

    def test_executors_share_the_engine(self, setup):
        # Enforced AST-accurately by simlint's SL001 (accounting-single-home)
        # so this test and the linter can never disagree: no simulation/
        # module other than engine.py may construct EpochMetrics or
        # EpochObservation, call classify_query_state, re-derive the
        # half-epoch batching-delay term, or redefine the accountant helpers.
        import inspect

        from simlint import lint_source, rules_by_id
        from repro.simulation import engine, executor, multiquery, multisource

        engine_src = inspect.getsource(engine)
        assert "def goodput_bytes" in engine_src
        assert "def finish_source_epoch" in engine_src
        (sl001,) = rules_by_id(["SL001"])
        for module in (executor, multisource, multiquery):
            violations = lint_source(
                inspect.getsource(module),
                display_path=module.__file__,
                module_path="repro/simulation/"
                + module.__name__.rsplit(".", 1)[-1]
                + ".py",
                rules=[sl001],
            )
            assert violations == [], [v.render() for v in violations]

    def test_engine_steps_any_executor_source(self, setup):
        engine = EpochEngine(cost_model=setup.cost_model, config=setup.config)
        engine.add_source(
            name="s",
            workload=setup.workload_factory(1),
            strategy=AllSPStrategy(),
            budget=1.0,
            plan=setup.plan,
        )
        (step,) = engine.step_sources()
        assert step.result.records_in == 120
        assert engine.epochs_run == 1
        with pytest.raises(SimulationError):
            engine.ensure_fresh()
