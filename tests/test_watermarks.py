"""Unit tests for watermark tracking and merging (Section V)."""

from __future__ import annotations

import math

import pytest

from repro.errors import SimulationError
from repro.query.watermarks import WatermarkTracker, replicate_watermark


class TestWatermarkTracker:
    def test_merged_is_minimum_across_channels(self):
        tracker = WatermarkTracker(["forwarded", "drain"])
        tracker.advance("forwarded", 10.0)
        assert tracker.merged() == -math.inf  # drain has not reported yet
        tracker.advance("drain", 4.0)
        assert tracker.merged() == 4.0

    def test_no_channels_means_no_progress(self):
        assert WatermarkTracker().merged() == -math.inf

    def test_register_is_idempotent(self):
        tracker = WatermarkTracker()
        tracker.register("a")
        tracker.advance("a", 5.0)
        tracker.register("a")
        assert tracker.merged() == 5.0

    def test_unknown_channel_rejected(self):
        tracker = WatermarkTracker(["a"])
        with pytest.raises(SimulationError):
            tracker.advance("b", 1.0)

    def test_watermark_regression_rejected(self):
        tracker = WatermarkTracker(["a"])
        tracker.advance("a", 10.0)
        with pytest.raises(SimulationError):
            tracker.advance("a", 5.0)

    def test_window_closes_only_when_all_channels_pass(self):
        tracker = WatermarkTracker(["forwarded", "drain"])
        tracker.advance("forwarded", 12.0)
        tracker.advance("drain", 9.0)
        assert tracker.window_closed(10.0) is False
        tracker.advance("drain", 10.5)
        assert tracker.window_closed(10.0) is True

    def test_channels_listed_sorted(self):
        tracker = WatermarkTracker(["b", "a"])
        assert tracker.channels() == ["a", "b"]

    def test_advance_returns_merged(self):
        tracker = WatermarkTracker(["a", "b"])
        tracker.advance("a", 3.0)
        assert tracker.advance("b", 7.0) == 3.0


class TestReplicateWatermark:
    def test_replicates_value_per_output(self):
        assert replicate_watermark(5.0, 3) == [5.0, 5.0, 5.0]

    def test_rejects_non_positive_fan_out(self):
        with pytest.raises(SimulationError):
            replicate_watermark(1.0, 0)
