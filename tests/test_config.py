"""Unit tests for configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import (
    AdaptationConfig,
    EpochConfig,
    JarvisConfig,
    NetworkConfig,
    ProxyThresholds,
    DEFAULT_CONFIG,
    BASE_BANDWIDTH_MBPS,
)
from repro.errors import ConfigurationError


class TestEpochConfig:
    def test_defaults_match_paper(self):
        cfg = EpochConfig()
        assert cfg.duration_s == 1.0
        assert cfg.detect_epochs == 3
        assert cfg.latency_bound_s == 5.0

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ConfigurationError):
            EpochConfig(duration_s=0.0)
        with pytest.raises(ConfigurationError):
            EpochConfig(duration_s=-1.0)

    def test_rejects_zero_detect_epochs(self):
        with pytest.raises(ConfigurationError):
            EpochConfig(detect_epochs=0)

    def test_rejects_non_positive_latency_bound(self):
        with pytest.raises(ConfigurationError):
            EpochConfig(latency_bound_s=0.0)

    def test_is_frozen(self):
        cfg = EpochConfig()
        with pytest.raises(AttributeError):
            cfg.duration_s = 2.0  # type: ignore[misc]


class TestProxyThresholds:
    def test_defaults_are_fractions(self):
        thr = ProxyThresholds()
        assert 0.0 <= thr.drained_thres <= 1.0
        assert 0.0 <= thr.idle_thres <= 1.0
        assert thr.congestion_pending_records >= 0

    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_rejects_out_of_range_drained_thres(self, value):
        with pytest.raises(ConfigurationError):
            ProxyThresholds(drained_thres=value)

    @pytest.mark.parametrize("value", [-0.01, 2.0])
    def test_rejects_out_of_range_idle_thres(self, value):
        with pytest.raises(ConfigurationError):
            ProxyThresholds(idle_thres=value)

    def test_rejects_negative_pending_floor(self):
        with pytest.raises(ConfigurationError):
            ProxyThresholds(congestion_pending_records=-1)


class TestAdaptationConfig:
    def test_defaults_enable_both_halves(self):
        cfg = AdaptationConfig()
        assert cfg.use_lp_init is True
        assert cfg.use_finetune is True

    def test_rejects_too_few_load_factor_steps(self):
        with pytest.raises(ConfigurationError):
            AdaptationConfig(load_factor_steps=1)

    def test_rejects_zero_finetune_epochs(self):
        with pytest.raises(ConfigurationError):
            AdaptationConfig(max_finetune_epochs=0)

    def test_rejects_negative_min_profile_records(self):
        with pytest.raises(ConfigurationError):
            AdaptationConfig(min_profile_records=-5)

    def test_rejects_out_of_range_noise(self):
        with pytest.raises(ConfigurationError):
            AdaptationConfig(profile_noise=1.5)

    def test_rejects_out_of_range_headroom(self):
        with pytest.raises(ConfigurationError):
            AdaptationConfig(budget_headroom=-0.2)

    def test_ablation_flags_can_be_disabled(self):
        cfg = AdaptationConfig(use_lp_init=False, use_finetune=False)
        assert cfg.use_lp_init is False
        assert cfg.use_finetune is False


class TestNetworkConfig:
    def test_default_bandwidth_matches_paper_share(self):
        cfg = NetworkConfig()
        assert cfg.bandwidth_mbps == pytest.approx(BASE_BANDWIDTH_MBPS)
        assert cfg.effective_bandwidth_mbps == pytest.approx(BASE_BANDWIDTH_MBPS)

    def test_scaling_applies_to_effective_bandwidth(self):
        cfg = NetworkConfig(bandwidth_mbps=2.0, rate_scale=10.0)
        assert cfg.effective_bandwidth_mbps == pytest.approx(20.0)

    def test_rejects_non_positive_values(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(bandwidth_mbps=0.0)
        with pytest.raises(ConfigurationError):
            NetworkConfig(rate_scale=0.0)


class TestJarvisConfig:
    def test_default_bundle_is_consistent(self):
        cfg = JarvisConfig()
        assert cfg.epoch.duration_s == 1.0
        assert cfg.thresholds.idle_thres > 0
        assert cfg.adaptation.load_factor_steps >= 2
        assert cfg.network.bandwidth_mbps > 0

    def test_with_updates_replaces_only_named_fields(self):
        cfg = JarvisConfig()
        updated = cfg.with_updates(seed=42)
        assert updated.seed == 42
        assert updated.epoch == cfg.epoch
        assert cfg.seed == 0  # original untouched

    def test_with_updates_nested_section(self):
        cfg = JarvisConfig()
        updated = cfg.with_updates(epoch=EpochConfig(duration_s=2.0))
        assert updated.epoch.duration_s == 2.0
        assert cfg.epoch.duration_s == 1.0

    def test_module_level_default_exists(self):
        assert isinstance(DEFAULT_CONFIG, JarvisConfig)
