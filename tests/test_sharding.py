"""Tests for the sharded (multi-building-block) cluster executor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import AllSPStrategy, StaticLoadFactorStrategy
from repro.errors import SimulationError
from repro.analysis.experiments import make_setup, make_strategy
from repro.simulation.metrics import (
    ClusterEpochMetrics,
    ClusterMetrics,
    EpochMetrics,
    RunMetrics,
)
from repro.simulation.multisource import (
    MultiSourceConfig,
    MultiSourceExecutor,
    SourceSpec,
    homogeneous_sources,
)
from repro.simulation.node import StreamProcessorNode
from repro.simulation.sharding import (
    ByteRateBalancedPlacement,
    RoundRobinPlacement,
    ShardedClusterExecutor,
    StaticPlacement,
    estimated_rate_mbps,
    make_placement,
)


@pytest.fixture(scope="module")
def setup():
    return make_setup("s2s_probe", records_per_epoch=120)


class _RateWorkload:
    """Stub workload with a declared rate and no records."""

    def __init__(self, rate_mbps):
        if rate_mbps is not None:
            self.input_rate_mbps = rate_mbps

    def records_for_epoch(self, epoch):
        return []


def rate_specs(rates):
    return [
        SourceSpec(
            name=f"s{i}",
            workload=_RateWorkload(rate),
            strategy=StaticLoadFactorStrategy([1.0], name=f"static-{i}"),
        )
        for i, rate in enumerate(rates)
    ]


def build_sharded(setup, specs, num_blocks, placement="round_robin",
                  ingress_mbps=100.0, sp_cores=64, sp_compute_share=1.0):
    return ShardedClusterExecutor(
        plan=setup.plan,
        cost_model=setup.cost_model,
        sources=specs,
        num_blocks=num_blocks,
        placement=placement,
        cluster_config=MultiSourceConfig(
            config=setup.config,
            stream_processor=StreamProcessorNode(
                cores=sp_cores, ingress_bandwidth_mbps=ingress_mbps
            ),
            sp_compute_share=sp_compute_share,
        ),
    )


def all_sp_specs(setup, num_sources, seed=10):
    return homogeneous_sources(
        num_sources,
        workload_factory=lambda i: setup.workload_factory(seed + i),
        strategy_factory=lambda i: AllSPStrategy(),
        budget=1.0,
    )


class TestPlacementPolicies:
    def test_round_robin_deals_in_order(self):
        specs = rate_specs([1.0] * 5)
        assert RoundRobinPlacement().assign(specs, 2) == [0, 1, 0, 1, 0]

    def test_byte_rate_balanced_packs_heaviest_first(self):
        specs = rate_specs([10.0, 9.0, 2.0, 1.0])
        assignment = ByteRateBalancedPlacement().assign(specs, 2)
        # Heaviest-first greedy: 10 -> block 0, 9 -> block 1, 2 -> block 1
        # (load 9 < 10), 1 -> block 0 (load 10 < 11): both blocks end at 11.
        assert assignment == [0, 1, 1, 0]

    def test_byte_rate_balanced_falls_back_without_rate_attribute(self):
        specs = rate_specs([None, None, None, None])
        assignment = ByteRateBalancedPlacement().assign(specs, 2)
        assert sorted(assignment) == [0, 0, 1, 1]  # count-balanced

    def test_byte_rate_balanced_spreads_zero_rate_fleet(self):
        """Regression: all-zero rates must count-balance, not pile on block 0
        (which would crash the executor with an empty block)."""
        specs = rate_specs([0.0, 0.0, 0.0, 0.0])
        assignment = ByteRateBalancedPlacement().assign(specs, 2)
        assert sorted(assignment) == [0, 0, 1, 1]

    def test_estimated_rate_handles_missing_and_bad_values(self):
        assert estimated_rate_mbps(rate_specs([None])[0], default=7.0) == 7.0
        assert estimated_rate_mbps(rate_specs(["bogus"])[0], default=7.0) == 7.0
        assert estimated_rate_mbps(rate_specs([3.5])[0]) == 3.5

    def test_estimated_rate_rejects_negative_values(self):
        """Regression: negative rates used to clamp to 0.0 silently, so a
        buggy workload made every such source look free and the greedy
        bin-packer piled them all onto one block; they must fall back to the
        default like non-finite rates."""
        assert estimated_rate_mbps(rate_specs([-3.0])[0], default=7.0) == 7.0
        assert estimated_rate_mbps(rate_specs([-0.0])[0], default=7.0) == 0.0

    def test_byte_rate_balanced_spreads_negative_rate_fleet(self):
        """With the default fallback, an all-negative-rate fleet spreads
        across blocks instead of collapsing onto block 0."""
        specs = rate_specs([-1.0, -2.0, -3.0, -4.0])
        assignment = ByteRateBalancedPlacement().assign(specs, 2)
        assert sorted(assignment) == [0, 0, 1, 1]

    def test_estimated_rate_rejects_non_finite_values(self):
        """Regression: inf/nan rates must fall back to the default instead of
        poisoning the bin-packer's sort and load comparisons."""
        for bad in (float("nan"), float("inf"), float("-inf")):
            assert estimated_rate_mbps(rate_specs([bad])[0], default=7.0) == 7.0

    def test_byte_rate_balanced_survives_inf_rate(self):
        """An inf-rate workload degrades to the default rate, so the fleet
        still spreads across blocks instead of every block comparing equal."""
        specs = rate_specs([float("inf"), 1.0, 1.0, 1.0])
        assignment = ByteRateBalancedPlacement().assign(specs, 2)
        assert sorted(assignment) == [0, 0, 1, 1]

    def test_static_placement_uses_mapping(self):
        specs = rate_specs([1.0, 1.0, 1.0])
        policy = StaticPlacement({"s0": 1, "s1": 0, "s2": 1})
        assert policy.assign(specs, 2) == [1, 0, 1]

    def test_static_placement_missing_source_rejected(self):
        specs = rate_specs([1.0, 1.0])
        with pytest.raises(SimulationError):
            StaticPlacement({"s0": 0}).assign(specs, 2)

    def test_static_placement_out_of_range_rejected(self):
        specs = rate_specs([1.0])
        with pytest.raises(SimulationError):
            StaticPlacement({"s0": 3}).assign(specs, 2)

    def test_make_placement_coercions(self):
        assert isinstance(make_placement("round-robin"), RoundRobinPlacement)
        assert isinstance(make_placement("byte_rate_balanced"), ByteRateBalancedPlacement)
        assert isinstance(make_placement("balanced"), ByteRateBalancedPlacement)
        assert isinstance(make_placement({"s0": 0}), StaticPlacement)
        policy = RoundRobinPlacement()
        assert make_placement(policy) is policy
        with pytest.raises(SimulationError):
            make_placement("best-effort")
        with pytest.raises(SimulationError):
            make_placement(42)


class TestConstruction:
    def test_requires_sources_and_blocks(self, setup):
        with pytest.raises(SimulationError):
            build_sharded(setup, [], 1)
        with pytest.raises(SimulationError):
            build_sharded(setup, all_sp_specs(setup, 2), 0)

    def test_rejects_duplicate_names(self, setup):
        specs = all_sp_specs(setup, 2)
        specs[1].name = specs[0].name
        with pytest.raises(SimulationError):
            build_sharded(setup, specs, 2)

    def test_idle_blocks_allowed(self, setup):
        """Regression: K > fleet size used to be a hard SimulationError;
        idle blocks must construct, step zero-byte epochs, and keep their
        capacity counted in the fleet-wide merge (they can also receive
        migrated sources later)."""
        executor = build_sharded(setup, all_sp_specs(setup, 2), 3, ingress_mbps=5.0)
        assert executor.num_blocks == 3
        assert [len(group) for group in executor._groups].count(0) == 1
        metrics = executor.run(4, warmup_epochs=0)
        assert metrics.num_sources == 2
        # The idle block's link still contributes fleet capacity.
        assert metrics.cluster_epochs[0].network_capacity_bytes == pytest.approx(
            3 * 5.0 * 1e6 / 8.0
        )
        assert executor.verify_record_conservation() == []

    def test_assignment_is_exposed(self, setup):
        executor = build_sharded(setup, all_sp_specs(setup, 4), 2)
        assignment = executor.assignment()
        assert assignment == {
            "source-0": 0, "source-1": 1, "source-2": 0, "source-3": 1
        }
        assert executor.block_of("source-3") == 1
        with pytest.raises(SimulationError):
            executor.block_of("nope")
        assert executor.num_blocks == 2
        assert executor.num_sources == 4
        assert sorted(executor.source_names()) == sorted(assignment)

    def test_placement_report_balances_rates(self, setup):
        executor = build_sharded(
            setup, all_sp_specs(setup, 4), 2, placement="balanced"
        )
        report = executor.placement_report()
        assert report["policy"] == "byte-rate-balanced"
        assert report["sources_per_block"] == [2, 2]
        assert report["rate_imbalance_ratio"] == pytest.approx(1.0)
        assert report["rate_stdev_mbps"] == pytest.approx(0.0)


class TestSingleBlockEquivalence:
    def test_k1_matches_multisource_exactly(self, setup):
        """Acceptance: K=1 reproduces MultiSourceExecutor metrics exactly."""

        def specs():
            return homogeneous_sources(
                3,
                workload_factory=lambda i: setup.workload_factory(20 + i),
                strategy_factory=lambda i: make_strategy("Best-OP", setup, 0.5),
                budget=0.5,
            )

        def config():
            return MultiSourceConfig(
                config=setup.config,
                stream_processor=StreamProcessorNode(ingress_bandwidth_mbps=2.0),
            )

        direct = MultiSourceExecutor(
            plan=setup.plan,
            cost_model=setup.cost_model,
            sources=specs(),
            cluster_config=config(),
        ).run(15, warmup_epochs=4)
        sharded = ShardedClusterExecutor(
            plan=setup.plan,
            cost_model=setup.cost_model,
            sources=specs(),
            num_blocks=1,
            cluster_config=config(),
        ).run(15, warmup_epochs=4)

        assert sharded.summary() == direct.summary()
        assert sharded.source_names() == direct.source_names()
        for name in direct.source_names():
            assert (
                sharded.per_source[name].summary()
                == direct.per_source[name].summary()
            )
        for mine, theirs in zip(sharded.cluster_epochs, direct.cluster_epochs):
            assert mine == theirs


class TestShardedScaling:
    def test_goodput_scales_with_blocks_past_the_knee(self, setup):
        """Acceptance: aggregate goodput grows with K once one block saturates."""
        ingress = 1.3 * setup.input_rate_mbps  # one block carries ~1 source
        throughputs = []
        for k in (1, 2, 4):
            executor = build_sharded(
                setup, all_sp_specs(setup, 4), k, ingress_mbps=ingress
            )
            metrics = executor.run(16, warmup_epochs=4)
            throughputs.append(metrics.aggregate_throughput_mbps())
            assert executor.verify_record_conservation() == []
        assert throughputs[0] < throughputs[1] < throughputs[2]

    def test_fleet_metrics_sum_blocks(self, setup):
        executor = build_sharded(setup, all_sp_specs(setup, 4), 2, ingress_mbps=5.0)
        metrics = executor.run(8, warmup_epochs=0)
        assert metrics.num_sources == 4
        assert metrics.metadata["num_blocks"] == 2
        per_block = metrics.metadata["per_block_summary"]
        assert len(per_block) == 2
        assert sum(entry["aggregate_throughput_mbps"] for entry in per_block) == (
            pytest.approx(metrics.aggregate_throughput_mbps())
        )
        # Fleet capacity is the sum of the blocks' links.
        capacity = metrics.cluster_epochs[0].network_capacity_bytes
        assert capacity == pytest.approx(2 * 5.0 * 1e6 / 8.0)


class TestShardedConservation:
    @settings(max_examples=8, deadline=None)
    @given(
        num_sources=st.integers(min_value=2, max_value=5),
        num_blocks=st.integers(min_value=1, max_value=3),
        ingress=st.floats(min_value=0.0005, max_value=5.0),
        budget=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_sharded_runs_conserve_records(
        self, setup, num_sources, num_blocks, ingress, budget
    ):
        """Property: conservation holds for any fleet/block/link combination,
        including link slivers that force mid-record exhaustion every epoch."""
        if num_blocks > num_sources:
            num_blocks = num_sources
        specs = homogeneous_sources(
            num_sources,
            workload_factory=lambda i: setup.workload_factory(70 + i),
            strategy_factory=lambda i: AllSPStrategy(),
            budget=budget,
        )
        executor = build_sharded(setup, specs, num_blocks, ingress_mbps=ingress)
        executor.run(6, warmup_epochs=0)
        assert executor.verify_record_conservation() == []

    def test_congested_sharded_run_conserves_records(self, setup):
        specs = homogeneous_sources(
            4,
            workload_factory=lambda i: setup.workload_factory(80 + i),
            strategy_factory=lambda i: StaticLoadFactorStrategy(
                [1.0, 1.0, 1.0], name=f"static-{i}"
            ),
            budget=0.15,
        )
        executor = build_sharded(setup, specs, 2, ingress_mbps=0.2)
        executor.run(20, warmup_epochs=0)
        assert executor.verify_record_conservation() == []
        report = executor.record_conservation_report()
        assert set(report) == {f"source-{i}" for i in range(4)}


class TestShardedRunReuseGuard:
    def test_run_twice_raises(self, setup):
        executor = build_sharded(setup, all_sp_specs(setup, 2), 2)
        executor.run(3, warmup_epochs=0)
        with pytest.raises(SimulationError, match="fresh executor"):
            executor.run(3, warmup_epochs=0)

    def test_run_after_run_epoch_raises(self, setup):
        executor = build_sharded(setup, all_sp_specs(setup, 2), 2)
        executor.run_epoch()
        with pytest.raises(SimulationError, match="fresh executor"):
            executor.run(3, warmup_epochs=0)


class TestClusterMetricsMerging:
    def epoch(self, epoch=0, offered=100.0):
        return ClusterEpochMetrics(
            epoch=epoch,
            network_offered_bytes=offered,
            network_sent_bytes=80.0,
            network_queued_bytes=20.0,
            network_capacity_bytes=160.0,
            sp_cpu_used_seconds=0.25,
            sp_cpu_capacity_seconds=1.0,
            sp_backlog_records=3,
        )

    def test_epoch_merge_sums_fields(self):
        merged = ClusterEpochMetrics.merge([self.epoch(), self.epoch()])
        assert merged.network_offered_bytes == pytest.approx(200.0)
        assert merged.network_capacity_bytes == pytest.approx(320.0)
        assert merged.sp_backlog_records == 6
        assert merged.network_utilization == pytest.approx(0.5)
        assert merged.sp_cpu_utilization == pytest.approx(0.25)

    def test_epoch_merge_rejects_mismatched_epochs(self):
        with pytest.raises(SimulationError):
            ClusterEpochMetrics.merge([self.epoch(0), self.epoch(1)])
        with pytest.raises(SimulationError):
            ClusterEpochMetrics.merge([])

    def block(self, name, epochs=2):
        block = ClusterMetrics(epoch_duration_s=1.0)
        run = RunMetrics(epoch_duration_s=1.0)
        for e in range(epochs):
            run.record(
                EpochMetrics(
                    epoch=e,
                    input_bytes=1000.0,
                    goodput_bytes=900.0,
                    network_bytes_offered=100.0,
                    network_bytes_sent=100.0,
                    network_queue_bytes=0.0,
                    cpu_used_seconds=0.5,
                    cpu_budget_seconds=1.0,
                    sp_cpu_seconds=0.1,
                    source_backlog_records=0,
                    latency_s=1.0,
                )
            )
            block.record_cluster_epoch(self.epoch(e))
        block.register_source(name, run)
        return block

    def test_cluster_merged_combines_blocks(self):
        fleet = ClusterMetrics.merged(
            [self.block("a"), self.block("b")], metadata={"num_blocks": 2}
        )
        assert fleet.num_sources == 2
        assert fleet.metadata["num_blocks"] == 2
        assert len(fleet.cluster_epochs) == 2
        assert fleet.cluster_epochs[0].network_capacity_bytes == pytest.approx(320.0)
        single = self.block("a").aggregate_throughput_mbps()
        assert fleet.aggregate_throughput_mbps() == pytest.approx(2 * single)

    def test_cluster_merged_validations(self):
        with pytest.raises(SimulationError):
            ClusterMetrics.merged([])
        with pytest.raises(SimulationError):  # duplicate source names
            ClusterMetrics.merged([self.block("a"), self.block("a")])
        with pytest.raises(SimulationError):  # differing epoch counts
            ClusterMetrics.merged([self.block("a"), self.block("b", epochs=3)])
        other = self.block("b")
        other.epoch_duration_s = 2.0
        with pytest.raises(SimulationError):
            ClusterMetrics.merged([self.block("a"), other])


class TestHeterogeneousBlocks:
    """Per-block StreamProcessorNode overrides (heterogeneous deployments)."""

    def test_override_count_validated(self, setup):
        with pytest.raises(SimulationError, match="per-block stream processors"):
            ShardedClusterExecutor(
                plan=setup.plan,
                cost_model=setup.cost_model,
                sources=all_sp_specs(setup, 4),
                num_blocks=2,
                stream_processors=[StreamProcessorNode()],
            )

    def test_none_entries_keep_the_template(self, setup):
        template = StreamProcessorNode(cores=8, ingress_bandwidth_mbps=50.0)
        fast = StreamProcessorNode(cores=64, ingress_bandwidth_mbps=200.0)
        executor = ShardedClusterExecutor(
            plan=setup.plan,
            cost_model=setup.cost_model,
            sources=all_sp_specs(setup, 4),
            num_blocks=2,
            cluster_config=MultiSourceConfig(
                config=setup.config, stream_processor=template
            ),
            stream_processors=[None, fast],
        )
        assert executor.blocks[0].link.bandwidth_mbps == 50.0
        assert executor.blocks[1].link.bandwidth_mbps == 200.0
        assert executor.blocks[1].sp_compute_capacity_s == 64.0
        report = executor.placement_report()
        assert report["block_ingress_mbps"] == [50.0, 200.0]

    def test_faster_block_absorbs_more_byte_rate(self, setup):
        """Capacity-aware byte-rate balancing: a block with 2x the ingress
        bandwidth should carry ~2x the byte rate of a balanced fleet."""
        rates = [8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 1.0, 1.0]
        specs = rate_specs(rates)
        slow = StreamProcessorNode(ingress_bandwidth_mbps=100.0)
        fast = StreamProcessorNode(ingress_bandwidth_mbps=200.0)
        executor = ShardedClusterExecutor(
            plan=setup.plan,
            cost_model=setup.cost_model,
            sources=specs,
            num_blocks=2,
            placement="byte_rate_balanced",
            cluster_config=MultiSourceConfig(
                config=setup.config, stream_processor=slow
            ),
            stream_processors=[None, fast],
        )
        report = executor.placement_report()
        slow_rate, fast_rate = report["estimated_block_rates_mbps"]
        assert fast_rate > slow_rate
        # The load split should track the 1:2 capacity split.
        assert fast_rate / slow_rate == pytest.approx(2.0, rel=0.25)

    def test_homogeneous_overrides_match_template_run(self, setup):
        """Overrides equal to the template must not change the simulation."""
        node = StreamProcessorNode(cores=16, ingress_bandwidth_mbps=80.0)
        def build(stream_processors):
            return ShardedClusterExecutor(
                plan=setup.plan,
                cost_model=setup.cost_model,
                sources=all_sp_specs(setup, 4),
                num_blocks=2,
                cluster_config=MultiSourceConfig(
                    config=setup.config, stream_processor=node
                ),
                stream_processors=stream_processors,
            )
        base = build(None).run(8, warmup_epochs=2)
        same = build([node, node]).run(8, warmup_epochs=2)
        assert (
            base.aggregate_throughput_mbps() == same.aggregate_throughput_mbps()
        )
