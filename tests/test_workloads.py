"""Unit tests for the synthetic workload generators and trace utilities."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.query.records import LogRecord, PingmeshRecord
from repro.workloads.dynamics import BurstSpec, WorkloadBurst
from repro.workloads.loganalytics import LogAnalyticsConfig, LogAnalyticsWorkload
from repro.workloads.pingmesh import PingmeshConfig, PingmeshWorkload
from repro.workloads.traces import (
    Trace,
    per_pair_latency_ranges,
    pingmesh_trace_stats,
    rate_variability_across_sources,
    record_trace,
    replay_trace,
)


class TestPingmeshConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            PingmeshConfig(records_per_epoch=0)
        with pytest.raises(WorkloadError):
            PingmeshConfig(peers=0)
        with pytest.raises(WorkloadError):
            PingmeshConfig(error_rate=1.5)
        with pytest.raises(WorkloadError):
            PingmeshConfig(anomaly_peer_fraction=-0.1)

    def test_scaled_config(self):
        cfg = PingmeshConfig(records_per_epoch=1000, peers=5000)
        half = cfg.scaled(0.5)
        assert half.records_per_epoch == 500
        assert half.peers == 2500
        with pytest.raises(WorkloadError):
            cfg.scaled(0.0)


class TestPingmeshWorkload:
    def make(self, **kwargs):
        defaults = dict(records_per_epoch=500, peers=1000, seed=5)
        defaults.update(kwargs)
        return PingmeshWorkload(PingmeshConfig(**defaults))

    def test_record_count_and_type(self):
        workload = self.make()
        records = workload.records_for_epoch(0)
        assert len(records) == 500
        assert all(isinstance(r, PingmeshRecord) for r in records)

    def test_error_rate_close_to_configuration(self):
        workload = self.make(records_per_epoch=2000, error_rate=0.14)
        records = workload.records_for_epoch(0)
        observed = sum(1 for r in records if r.err_code != 0) / len(records)
        assert observed == pytest.approx(0.14, abs=0.03)

    def test_event_times_are_monotone_within_epoch(self):
        records = self.make().records_for_epoch(3)
        times = [r.event_time for r in records]
        assert times == sorted(times)
        assert 3.0 <= times[0] < 4.0

    def test_deterministic_for_same_seed(self):
        a = self.make(seed=9).records_for_epoch(0)
        b = self.make(seed=9).records_for_epoch(0)
        assert [r.as_dict() for r in a] == [r.as_dict() for r in b]

    def test_different_seeds_differ(self):
        a = self.make(seed=1).records_for_epoch(0)
        b = self.make(seed=2).records_for_epoch(0)
        assert [r.rtt_us for r in a] != [r.rtt_us for r in b]

    def test_anomalous_peers_show_high_latency(self):
        workload = self.make(
            records_per_epoch=2000,
            anomaly_peer_fraction=0.05,
            anomaly_probability=1.0,
        )
        records = [r for epoch in range(5) for r in workload.records_for_epoch(epoch)]
        anomalous = [r for r in records if r.dst_ip in workload.anomalous_peers]
        normal = [r for r in records if r.dst_ip not in workload.anomalous_peers]
        assert anomalous, "some probes must hit anomalous peers"
        assert max(r.rtt_ms for r in anomalous) >= 5.0
        assert max(r.rtt_ms for r in normal) < 5.0

    def test_input_rate_estimate(self):
        workload = self.make(records_per_epoch=1000)
        assert workload.input_rate_mbps == pytest.approx(1000 * 86 * 8 / 1e6)

    def test_tor_table_covers_all_destinations(self):
        workload = self.make(peers=200)
        table = workload.tor_table(servers_per_tor=20)
        records = workload.records_for_epoch(0)
        assert all(table.lookup(r.dst_ip) is not None for r in records)

    def test_key_cardinality_bounded_by_peers(self):
        workload = self.make(records_per_epoch=3000, peers=100)
        records = workload.records_for_epoch(0)
        pairs = {(r.src_ip, r.dst_ip) for r in records}
        assert len(pairs) <= 100


class TestLogAnalyticsWorkload:
    def make(self, **kwargs):
        defaults = dict(lines_per_epoch=500, tenants=20, seed=5)
        defaults.update(kwargs)
        return LogAnalyticsWorkload(LogAnalyticsConfig(**defaults))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            LogAnalyticsConfig(lines_per_epoch=0)
        with pytest.raises(WorkloadError):
            LogAnalyticsConfig(tenants=0)
        with pytest.raises(WorkloadError):
            LogAnalyticsConfig(noise_fraction=2.0)

    def test_record_count_and_type(self):
        records = self.make().records_for_epoch(0)
        assert len(records) == 500
        assert all(isinstance(r, LogRecord) for r in records)

    def test_noise_fraction_roughly_respected(self):
        workload = self.make(lines_per_epoch=2000, noise_fraction=0.2)
        records = workload.records_for_epoch(0)
        noise = sum(1 for r in records if "tenant name" not in r.line.lower())
        assert noise / len(records) == pytest.approx(0.2, abs=0.05)

    def test_lines_are_parseable_by_the_query(self):
        from repro.query.builder import log_analytics_query

        query = log_analytics_query()
        records = self.make(lines_per_epoch=1000, noise_fraction=0.0,
                            malformed_fraction=0.0).records_for_epoch(0)
        current = records
        for op in query.operators[:-1]:
            current = op.process(current)
        assert len(current) >= 0.95 * len(records)

    def test_scaled_config(self):
        cfg = LogAnalyticsConfig(lines_per_epoch=1000)
        assert cfg.scaled(0.1).lines_per_epoch == 100


class TestWorkloadBurst:
    def test_burst_multiplies_record_count(self):
        base = PingmeshWorkload(PingmeshConfig(records_per_epoch=100, peers=200, seed=1))
        bursty = WorkloadBurst(base, [BurstSpec(5, 8, 3.0)])
        assert len(bursty.records_for_epoch(0)) == 100
        assert len(bursty.records_for_epoch(5)) == 300
        assert len(bursty.records_for_epoch(8)) == 100

    def test_fractional_multiplier(self):
        base = PingmeshWorkload(PingmeshConfig(records_per_epoch=100, peers=200, seed=1))
        bursty = WorkloadBurst(base)
        bursty.add_burst(0, 2, 1.5)
        assert len(bursty.records_for_epoch(0)) == 150

    def test_burst_validation(self):
        with pytest.raises(WorkloadError):
            BurstSpec(5, 5, 2.0)
        with pytest.raises(WorkloadError):
            BurstSpec(0, 5, 0.0)

    def test_exposes_base_rate(self):
        base = PingmeshWorkload(PingmeshConfig(records_per_epoch=100, peers=200))
        assert WorkloadBurst(base).input_rate_mbps == base.input_rate_mbps


class TestTraces:
    def test_record_and_replay_round_trip(self):
        workload = PingmeshWorkload(PingmeshConfig(records_per_epoch=50, peers=100, seed=2))
        trace = record_trace(workload, num_epochs=4)
        assert len(trace) == 4
        assert trace.total_records() == 200
        replay = replay_trace(trace)
        assert [r.as_dict() for r in replay.records_for_epoch(2)] == [
            r.as_dict() for r in trace.epochs[2]
        ]
        assert replay.records_for_epoch(10) == []

    def test_replay_loop(self):
        workload = PingmeshWorkload(PingmeshConfig(records_per_epoch=10, peers=20, seed=2))
        trace = record_trace(workload, num_epochs=2)
        replay = replay_trace(trace, loop=True)
        assert len(replay.records_for_epoch(5)) == 10

    def test_empty_trace_cannot_be_replayed(self):
        with pytest.raises(WorkloadError):
            replay_trace(Trace())

    def test_record_trace_validation(self):
        workload = PingmeshWorkload(PingmeshConfig(records_per_epoch=10, peers=20))
        with pytest.raises(WorkloadError):
            record_trace(workload, num_epochs=0)

    def test_pingmesh_trace_stats(self):
        workload = PingmeshWorkload(
            PingmeshConfig(records_per_epoch=500, peers=500, error_rate=0.14, seed=3)
        )
        trace = record_trace(workload, num_epochs=5)
        stats = pingmesh_trace_stats(trace)
        assert stats.total_records == 2500
        assert stats.error_rate == pytest.approx(0.14, abs=0.04)
        assert stats.distinct_pairs <= 500
        assert stats.mean_rate_mbps > 0
        assert 0.0 <= stats.high_latency_fraction < 0.2

    def test_trace_stats_require_pingmesh_records(self):
        trace = Trace()
        trace.append_epoch([LogRecord(0.0, "hello")])
        with pytest.raises(WorkloadError):
            pingmesh_trace_stats(trace)

    def test_per_pair_latency_ranges_skip_error_records(self):
        records = [
            PingmeshRecord(0.0, 1, 2, 1000.0, err_code=0),
            PingmeshRecord(0.0, 1, 2, 9000.0, err_code=0),
            PingmeshRecord(0.0, 1, 2, 99000.0, err_code=1),
        ]
        ranges = per_pair_latency_ranges(records)
        assert ranges[(1, 2)] == (1.0, 9.0)

    def test_rate_variability_matches_paper_style_summary(self):
        rates = [100, 40, 45, 30, 100, 20]
        summary = rate_variability_across_sources(rates)
        assert summary["fraction_at_or_below_half_peak"] == pytest.approx(4 / 6)
        assert summary["peak_rate"] == 100

    def test_rate_variability_validation(self):
        with pytest.raises(WorkloadError):
            rate_variability_across_sources([])
        with pytest.raises(WorkloadError):
            rate_variability_across_sources([0, 0])
