"""Unit tests for control proxies and load-factor arithmetic."""

from __future__ import annotations

import pytest

from repro.config import ProxyThresholds
from repro.core.control_proxy import (
    ControlProxy,
    effective_load_factors,
    load_factors_from_effective,
)
from repro.core.state import OperatorState
from repro.errors import ConfigurationError


class TestLoadFactor:
    def test_defaults_to_zero(self):
        assert ControlProxy("op").load_factor == 0.0

    def test_set_and_clamp_numerical_noise(self):
        proxy = ControlProxy("op")
        proxy.set_load_factor(1.0 + 1e-12)
        assert proxy.load_factor == 1.0
        proxy.set_load_factor(-1e-12)
        assert proxy.load_factor == 0.0

    @pytest.mark.parametrize("value", [-0.5, 1.5, float("nan")])
    def test_rejects_invalid_values(self, value):
        with pytest.raises(ConfigurationError):
            ControlProxy("op").set_load_factor(value)


class TestRouting:
    def test_full_forwarding(self):
        proxy = ControlProxy("op", load_factor=1.0)
        forwarded, drained = proxy.route(list(range(10)))
        assert forwarded == list(range(10))
        assert drained == []

    def test_full_draining(self):
        proxy = ControlProxy("op", load_factor=0.0)
        forwarded, drained = proxy.route(list(range(10)))
        assert forwarded == []
        assert len(drained) == 10

    def test_fractional_split_is_deterministic(self):
        proxy = ControlProxy("op", load_factor=0.3)
        forwarded, drained = proxy.route(list(range(10)))
        assert len(forwarded) == 3
        assert len(drained) == 7
        assert forwarded == [0, 1, 2]

    def test_split_conserves_records(self):
        proxy = ControlProxy("op", load_factor=0.61)
        records = list(range(97))
        forwarded, drained = proxy.route(records)
        assert sorted(forwarded + drained) == records

    def test_empty_input(self):
        proxy = ControlProxy("op", load_factor=0.5)
        assert proxy.route([]) == ([], [])

    def test_halfway_rounds_half_up(self):
        """Regression: round() rounds half to even, so p=0.5 forwarded 0 of
        1 records but 2 of 3 — non-monotone in n.  Stable half-up forwarding
        (floor(p*n + 0.5)) must forward ceil(n/2) at every odd n."""
        proxy = ControlProxy("op", load_factor=0.5)
        for n, expected in ((1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (7, 4)):
            forwarded, drained = proxy.route(list(range(n)))
            assert len(forwarded) == expected, n
            assert len(forwarded) + len(drained) == n

    def test_halfway_rounds_half_up_for_batches(self):
        """The same half-way cases through the columnar batched container."""
        import numpy as np

        from repro.query.records import Record, RecordBatch

        proxy = ControlProxy("op", load_factor=0.5)
        for n, expected in ((1, 1), (3, 2), (5, 3)):
            batch = RecordBatch(
                Record,
                {"event_time": np.arange(n, dtype=float)},
                uniform_size_bytes=86,
            )
            forwarded, drained = proxy.route(batch)
            assert len(forwarded) == expected, n
            assert len(forwarded) + len(drained) == n

    def test_halfway_split_is_monotone_in_n(self):
        """Half-up keeps the forwarded count non-decreasing as n grows."""
        proxy = ControlProxy("op", load_factor=0.5)
        counts = [len(proxy.route(list(range(n)))[0]) for n in range(1, 20)]
        assert counts == sorted(counts)


class TestStateDetection:
    def thresholds(self):
        return ProxyThresholds(
            drained_thres=0.05, idle_thres=0.10, congestion_pending_records=4
        )

    def test_congested_when_pending_exceeds_floor(self):
        proxy = ControlProxy("op", self.thresholds(), load_factor=1.0)
        proxy.route(list(range(100)))
        proxy.record_processing(processed=80, pending=20, idle_fraction=0.0)
        assert proxy.observe().state is OperatorState.CONGESTED

    def test_small_backlog_tolerated_as_stable(self):
        proxy = ControlProxy("op", self.thresholds(), load_factor=1.0)
        proxy.route(list(range(100)))
        proxy.record_processing(processed=97, pending=3, idle_fraction=0.0)
        assert proxy.observe().state is OperatorState.STABLE

    def test_idle_when_queue_empty_and_operator_mostly_idle(self):
        proxy = ControlProxy("op", self.thresholds(), load_factor=0.5)
        proxy.route(list(range(100)))
        proxy.record_processing(processed=50, pending=0, idle_fraction=0.8)
        assert proxy.observe().state is OperatorState.IDLE

    def test_not_idle_below_idle_threshold(self):
        proxy = ControlProxy("op", self.thresholds(), load_factor=0.5)
        proxy.route(list(range(100)))
        proxy.record_processing(processed=50, pending=0, idle_fraction=0.05)
        assert proxy.observe().state is OperatorState.STABLE

    def test_pending_records_prevent_idle(self):
        proxy = ControlProxy("op", self.thresholds(), load_factor=0.5)
        proxy.route(list(range(100)))
        proxy.record_processing(processed=50, pending=2, idle_fraction=0.9)
        assert proxy.observe().state is OperatorState.STABLE

    def test_record_idle_does_not_touch_pending(self):
        proxy = ControlProxy("op", self.thresholds(), load_factor=1.0)
        proxy.route(list(range(100)))
        proxy.record_processing(processed=50, pending=50, idle_fraction=0.0)
        proxy.record_idle(0.9)
        assert proxy.observe().state is OperatorState.CONGESTED

    def test_observation_counters(self):
        proxy = ControlProxy("op", self.thresholds(), load_factor=0.5)
        proxy.route(list(range(10)))
        proxy.record_processing(processed=5, pending=0, idle_fraction=0.5)
        obs = proxy.observe()
        assert obs.incoming_records == 10
        assert obs.forwarded_records == 5
        assert obs.drained_records == 5
        assert obs.processed_records == 5
        assert proxy.last_observation is obs

    def test_counters_reset_between_epochs(self):
        proxy = ControlProxy("op", self.thresholds(), load_factor=0.5)
        proxy.route(list(range(10)))
        proxy.record_processing(5, 0, 0.5)
        proxy.observe()
        obs = proxy.observe()
        assert obs.incoming_records == 0
        assert obs.forwarded_records == 0


class TestEffectiveLoadFactors:
    def test_effective_is_cumulative_product(self):
        assert effective_load_factors([1.0, 0.5, 0.5]) == pytest.approx([1.0, 0.5, 0.25])

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            effective_load_factors([1.2])

    def test_round_trip_with_inverse(self):
        factors = [1.0, 0.8, 0.25, 1.0]
        effective = effective_load_factors(factors)
        assert load_factors_from_effective(effective) == pytest.approx(factors)

    def test_inverse_handles_zero_upstream(self):
        assert load_factors_from_effective([0.0, 0.0]) == [0.0, 0.0]

    def test_inverse_rejects_increasing_sequences(self):
        with pytest.raises(ConfigurationError):
            load_factors_from_effective([0.5, 0.8])
