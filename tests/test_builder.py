"""Unit tests for the declarative query builder and the canned paper queries."""

from __future__ import annotations

import pytest

from repro.errors import QueryDefinitionError
from repro.query.builder import (
    LOG_PATTERNS,
    Query,
    Stream,
    log_analytics_query,
    s2s_probe_query,
    t2t_probe_query,
)
from repro.query.operators import (
    FilterOperator,
    GroupAggregateOperator,
    JoinOperator,
    MapOperator,
    WindowOperator,
)
from repro.query.records import IpToTorTable, LogRecord, PingmeshRecord


class TestStreamBuilder:
    def test_basic_chain(self):
        query = (
            Stream("q")
            .window(10.0)
            .filter(lambda e: True)
            .group_apply(lambda e: (e.src_ip,))
            .aggregate("avg:rtt")
            .build()
        )
        kinds = [op.kind for op in query.operators]
        assert kinds == ["window", "filter", "group_aggregate"]

    def test_window_must_come_first(self):
        with pytest.raises(QueryDefinitionError):
            Stream("q").filter(lambda e: True)
        builder = Stream("q").window(1.0)
        with pytest.raises(QueryDefinitionError):
            builder.window(2.0)

    def test_group_apply_requires_aggregate_before_build(self):
        builder = Stream("q").window(1.0).group_apply(lambda e: ())
        with pytest.raises(QueryDefinitionError):
            builder.build()

    def test_double_group_apply_rejected(self):
        builder = Stream("q").window(1.0).group_apply(lambda e: ())
        with pytest.raises(QueryDefinitionError):
            builder.group_apply(lambda e: ())

    def test_aggregate_without_group_is_global(self):
        query = Stream("q").window(1.0).aggregate("count").build()
        assert query.operators[-1].kind == "aggregate"

    def test_aggregate_requires_specs(self):
        with pytest.raises(QueryDefinitionError):
            Stream("q").window(1.0).aggregate()

    def test_unknown_aggregate_spec(self):
        with pytest.raises(QueryDefinitionError):
            Stream("q").window(1.0).aggregate("weird:rtt")

    def test_empty_names_rejected(self):
        with pytest.raises(QueryDefinitionError):
            Stream("")
        with pytest.raises(QueryDefinitionError):
            Query("q", [])

    def test_duplicate_operator_names_rejected(self):
        ops = [WindowOperator("same", 1.0), FilterOperator("same", lambda e: True)]
        with pytest.raises(QueryDefinitionError):
            Query("q", ops)

    def test_operator_names_are_unique_and_ordered(self):
        query = (
            Stream("q")
            .window(1.0)
            .map(lambda e: e)
            .map(lambda e: e)
            .filter(lambda e: True)
            .build()
        )
        names = query.operator_names()
        assert len(names) == len(set(names))
        assert names[0] == "window"

    def test_join_via_generic_api(self):
        table = IpToTorTable.dense(10)
        query = (
            Stream("q")
            .window(1.0)
            .join(table, key_fn=lambda e: e.src_ip, combine_fn=lambda e, v: e)
            .build()
        )
        assert isinstance(query.operators[-1], JoinOperator)

    def test_query_iteration_and_len(self):
        query = s2s_probe_query()
        assert len(query) == len(list(query)) == 3


class TestCannedQueries:
    def test_s2s_probe_structure(self):
        query = s2s_probe_query(window_s=10.0)
        assert [op.kind for op in query.operators] == [
            "window",
            "filter",
            "group_aggregate",
        ]
        window = query.operators[0]
        assert isinstance(window, WindowOperator) and window.length_s == 10.0

    def test_s2s_probe_filters_error_records(self):
        query = s2s_probe_query()
        filter_op = query.operators[1]
        good = PingmeshRecord(0.0, 1, 2, 10.0, err_code=0)
        bad = PingmeshRecord(0.0, 1, 2, 10.0, err_code=5)
        assert filter_op.process([good, bad]) == [good]

    def test_s2s_probe_groups_by_server_pair(self):
        query = s2s_probe_query()
        gr = query.operators[2]
        assert isinstance(gr, GroupAggregateOperator)
        gr.process(
            [
                PingmeshRecord(0.0, 1, 2, 10.0),
                PingmeshRecord(0.0, 1, 2, 20.0),
                PingmeshRecord(0.0, 1, 3, 30.0),
            ]
        )
        assert gr.group_count() == 2

    def test_t2t_probe_structure(self):
        query = t2t_probe_query(table_size=100)
        assert [op.kind for op in query.operators] == [
            "window",
            "filter",
            "join",
            "join",
            "group_aggregate",
        ]

    def test_t2t_probe_accepts_custom_table(self):
        table = IpToTorTable.dense(64, servers_per_tor=8)
        query = t2t_probe_query(table=table)
        join = query.operators[2]
        assert join.table is table

    def test_log_analytics_structure(self):
        query = log_analytics_query()
        kinds = [op.kind for op in query.operators]
        assert kinds == ["window", "map", "filter", "map", "map", "group_aggregate"]

    def test_log_analytics_end_to_end_parsing(self):
        query = log_analytics_query()
        line = "Tenant Name=tenant_001; job_id=j00001; cluster=east; cpu util=55.0"
        noise = "INFO heartbeat status=ok"
        records = [LogRecord(0.0, line), LogRecord(0.0, noise)]
        current = records
        for op in query.operators[:-1]:
            current = op.process(current)
        assert len(current) == 1
        parsed = current[0]
        assert parsed.tenant == "tenant_001"
        assert parsed.stat_name == "cpu util"
        assert parsed.stat == 5.0  # bucketized: 55 // 10

    def test_log_patterns_match_paper(self):
        assert "cpu util" in LOG_PATTERNS
        assert "job running time" in LOG_PATTERNS
