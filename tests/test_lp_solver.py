"""Unit tests for the LP formulation of the data-level partitioning problem."""

from __future__ import annotations

import pytest

from repro.config import AdaptationConfig
from repro.core.lp_solver import (
    cumulative_relay,
    plan_cpu_fraction,
    plan_drain_fraction,
    solve_data_level_lp,
)
from repro.core.profiler import OperatorProfile, PipelineProfile
from repro.errors import SolverError


def make_profile(costs, relays, budget, records=1000.0):
    operators = [
        OperatorProfile(
            name=f"op{i}",
            cost_per_record=c,
            relay_ratio=r,
            records_observed=1000,
            trusted=True,
        )
        for i, (c, r) in enumerate(zip(costs, relays))
    ]
    return PipelineProfile(
        operators=operators,
        compute_budget=budget,
        records_per_epoch=records,
        epoch_duration_s=1.0,
    )


def s2s_like_profile(budget):
    """Costs/relays shaped like the paper's S2SProbe query at 1000 rec/s."""
    costs = [0.0, 0.13 / 1000.0, 0.80 / 860.0]
    relays = [1.0, 0.86, 0.30]
    return make_profile(costs, relays, budget)


class TestHelpers:
    def test_cumulative_relay(self):
        assert cumulative_relay([0.5, 0.5, 1.0]) == pytest.approx([1.0, 0.5, 0.25])

    def test_plan_cpu_fraction_full_load(self):
        profile = s2s_like_profile(1.0)
        cpu = plan_cpu_fraction([1.0, 1.0, 1.0], profile.costs, profile.relay_ratios, 1000.0)
        assert cpu == pytest.approx(0.93, rel=0.02)

    def test_plan_drain_fraction_zero_when_everything_local(self):
        assert plan_drain_fraction([1.0, 1.0, 1.0], [1.0, 0.86, 0.3]) == pytest.approx(0.0)

    def test_plan_drain_fraction_one_when_everything_drained(self):
        assert plan_drain_fraction([0.0, 0.0, 0.0], [1.0, 0.86, 0.3]) == pytest.approx(1.0)


class TestSolve:
    def test_generous_budget_keeps_everything_local(self):
        plan = solve_data_level_lp(s2s_like_profile(1.0))
        assert plan.load_factors == pytest.approx([1.0, 1.0, 1.0], abs=1e-6)
        assert plan.expected_drain_fraction == pytest.approx(0.0, abs=1e-6)

    def test_zero_budget_drains_everything(self):
        plan = solve_data_level_lp(s2s_like_profile(0.0))
        assert plan.solver == "zero"
        assert plan.expected_drain_fraction == pytest.approx(1.0)
        assert all(p == 0.0 for p in plan.load_factors)

    def test_constrained_budget_respects_cpu_constraint(self):
        profile = s2s_like_profile(0.6)
        plan = solve_data_level_lp(profile)
        assert plan.expected_cpu_fraction <= 0.6 + 1e-6
        # Cheap filter should run fully; the expensive G+R partially.
        assert plan.load_factors[1] == pytest.approx(1.0, abs=1e-6)
        assert 0.3 < plan.load_factors[2] < 0.9

    def test_partial_plan_beats_operator_level_on_drain(self):
        """Data-level plans drain strictly less than the best all-or-nothing plan."""
        profile = s2s_like_profile(0.6)
        plan = solve_data_level_lp(profile)
        # Operator-level best at 0.6 budget: run window+filter only.
        operator_level_drain = plan_drain_fraction([1.0, 1.0, 0.0], profile.relay_ratios)
        assert plan.expected_drain_fraction < operator_level_drain

    def test_monotone_effective_factors(self):
        plan = solve_data_level_lp(s2s_like_profile(0.45))
        effective = plan.effective_load_factors
        assert all(effective[i] >= effective[i + 1] - 1e-9 for i in range(len(effective) - 1))

    def test_drain_decreases_with_budget(self):
        drains = [
            solve_data_level_lp(s2s_like_profile(budget)).expected_drain_fraction
            for budget in (0.2, 0.4, 0.6, 0.8, 1.0)
        ]
        assert all(drains[i] >= drains[i + 1] - 1e-9 for i in range(len(drains) - 1))

    def test_budget_override_argument(self):
        profile = s2s_like_profile(1.0)
        plan = solve_data_level_lp(profile, compute_budget=0.2)
        assert plan.expected_cpu_fraction <= 0.2 + 1e-6

    def test_empty_profile_rejected(self):
        with pytest.raises(SolverError):
            solve_data_level_lp(make_profile([], [], 1.0))

    def test_negative_costs_rejected_at_profile_construction(self):
        from repro.errors import PartitioningError

        with pytest.raises(PartitioningError):
            make_profile([-1.0], [0.5], 1.0)

    def test_zero_cost_operators_get_full_load(self):
        plan = solve_data_level_lp(make_profile([0.0, 0.0], [1.0, 0.5], 0.5))
        assert plan.load_factors == pytest.approx([1.0, 1.0])

    def test_plan_len(self):
        assert len(solve_data_level_lp(s2s_like_profile(0.5))) == 3


class TestFallback:
    def test_fallback_is_feasible(self):
        from repro.core import lp_solver

        profile = s2s_like_profile(0.6)
        upstream = lp_solver.cumulative_relay(profile.relay_ratios)
        effective = lp_solver._fallback_effective(
            profile.costs, profile.relay_ratios, upstream, 0.6 / 1000.0
        )
        cpu = plan_cpu_fraction(effective, profile.costs, profile.relay_ratios, 1000.0)
        assert cpu <= 0.6 + 1e-6
        assert all(effective[i] >= effective[i + 1] - 1e-9 for i in range(len(effective) - 1))

    def test_fallback_is_uniform_and_positive_under_partial_budget(self):
        from repro.core import lp_solver

        costs = [0.5 / 1000.0, 0.5 / 1000.0]
        relays = [0.9, 0.1]
        upstream = lp_solver.cumulative_relay(relays)
        effective = lp_solver._fallback_effective(costs, relays, upstream, 0.5 / 1000.0)
        assert effective[0] == pytest.approx(effective[1])
        assert 0.0 < effective[0] < 1.0

    def test_fallback_saturates_at_one_with_generous_budget(self):
        from repro.core import lp_solver

        effective = lp_solver._fallback_effective(
            [1e-5, 1e-5], [1.0, 1.0], [1.0, 1.0], 1.0
        )
        assert effective == [1.0, 1.0]
