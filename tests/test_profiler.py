"""Unit tests for the Profile-phase profiler."""

from __future__ import annotations

import random

import pytest

from repro.config import AdaptationConfig
from repro.core.profiler import OperatorProfile, PipelineProfile, Profiler
from repro.errors import PartitioningError


class TestOperatorProfile:
    def test_valid_profile(self):
        profile = OperatorProfile("f", 1e-4, 0.86, 500, True)
        assert profile.trusted is True

    def test_negative_cost_rejected(self):
        with pytest.raises(PartitioningError):
            OperatorProfile("f", -1e-4, 0.86, 500, True)

    def test_negative_relay_rejected(self):
        with pytest.raises(PartitioningError):
            OperatorProfile("f", 1e-4, -0.1, 500, True)


class TestPipelineProfile:
    def make(self):
        ops = [
            OperatorProfile("w", 0.0, 1.0, 100, True),
            OperatorProfile("f", 0.13 / 100, 0.86, 100, True),
            OperatorProfile("g", 0.80 / 86, 0.3, 100, True),
        ]
        return PipelineProfile(ops, compute_budget=0.6, records_per_epoch=100)

    def test_accessors(self):
        profile = self.make()
        assert profile.names == ["w", "f", "g"]
        assert len(profile) == 3
        assert profile.costs[1] == pytest.approx(0.0013)
        assert profile.relay_ratios[2] == pytest.approx(0.3)

    def test_full_cost_fraction_accounts_for_upstream_reduction(self):
        profile = self.make()
        assert profile.full_cost_fraction() == pytest.approx(0.13 + 0.80, rel=0.02)


class TestProfiler:
    def test_trusted_estimates_are_exact(self):
        profiler = Profiler(AdaptationConfig(min_profile_records=100))
        op = profiler.profile_operator("f", 200, 1e-4, 0.86)
        assert op.trusted is True
        assert op.cost_per_record == pytest.approx(1e-4)
        assert op.relay_ratio == pytest.approx(0.86)

    def test_undersampled_estimates_get_noise(self):
        config = AdaptationConfig(min_profile_records=500, profile_noise=0.5)
        profiler = Profiler(config, rng=random.Random(1))
        op = profiler.profile_operator("g", 50, 1e-3, 0.5)
        assert op.trusted is False
        assert op.cost_per_record != pytest.approx(1e-3)

    def test_noise_biased_towards_cost_underestimation(self):
        config = AdaptationConfig(min_profile_records=500, profile_noise=0.5)
        profiler = Profiler(config, rng=random.Random(3))
        costs = [
            profiler.profile_operator("g", 10, 1e-3, 0.5).cost_per_record
            for _ in range(20)
        ]
        assert all(cost <= 1e-3 for cost in costs)

    def test_noisy_relay_stays_in_range(self):
        config = AdaptationConfig(min_profile_records=500, profile_noise=0.5)
        profiler = Profiler(config, rng=random.Random(5))
        for _ in range(20):
            op = profiler.profile_operator("g", 10, 1e-3, 0.9)
            assert 0.0 <= op.relay_ratio <= 1.0

    def test_profile_pipeline_assembles_profiles(self):
        profiler = Profiler(AdaptationConfig(min_profile_records=10))
        profile = profiler.profile_pipeline(
            names=["w", "f"],
            records_processed=[100, 100],
            costs_per_record=[0.0, 1e-4],
            relay_ratios=[1.0, 0.86],
            compute_budget=0.5,
            records_per_epoch=100,
        )
        assert profile.names == ["w", "f"]
        assert profile.compute_budget == 0.5

    def test_profile_pipeline_length_mismatch_rejected(self):
        profiler = Profiler()
        with pytest.raises(PartitioningError):
            profiler.profile_pipeline(
                names=["a"],
                records_processed=[1, 2],
                costs_per_record=[0.1],
                relay_ratios=[1.0],
                compute_budget=0.5,
                records_per_epoch=100,
            )
