"""Unit tests for the Jarvis runtime state machine."""

from __future__ import annotations

import pytest

from repro.config import AdaptationConfig, EpochConfig, JarvisConfig
from repro.core.control_proxy import ProxyObservation
from repro.core.runtime import EpochObservation, JarvisRuntime, RuntimeTrace
from repro.core.state import OperatorState, QueryState, RuntimePhase, classify_query_state, is_stable
from repro.errors import PartitioningError


def obs_for(states, epoch=0, budget=0.6, records=1000, costs=None, relays=None, processed=None):
    proxy_obs = [
        ProxyObservation(
            state=state,
            incoming_records=records,
            forwarded_records=records,
            drained_records=0,
            processed_records=records,
            pending_records=100 if state is OperatorState.CONGESTED else 0,
            idle_fraction=0.9 if state is OperatorState.IDLE else 0.0,
        )
        for state in states
    ]
    return EpochObservation(
        epoch=epoch,
        proxy_observations=proxy_obs,
        compute_budget=budget,
        records_injected=records,
        measured_costs=costs,
        measured_relays=relays,
        records_processed=processed,
    )


S2S_COSTS = [0.0, 0.13 / 1000, 0.80 / 860]
S2S_RELAYS = [1.0, 0.86, 0.3]
NAMES = ["window", "filter", "group_aggregate"]


class TestStateClassification:
    def test_any_congested_wins(self):
        assert (
            classify_query_state([OperatorState.IDLE, OperatorState.CONGESTED])
            is QueryState.CONGESTED
        )

    def test_all_idle_is_idle(self):
        assert (
            classify_query_state([OperatorState.IDLE, OperatorState.IDLE])
            is QueryState.IDLE
        )

    def test_mixed_idle_and_stable_is_stable(self):
        assert (
            classify_query_state([OperatorState.IDLE, OperatorState.STABLE])
            is QueryState.STABLE
        )

    def test_empty_is_idle(self):
        assert classify_query_state([]) is QueryState.IDLE

    def test_is_stable_helper(self):
        assert is_stable(QueryState.STABLE) is True
        assert is_stable(QueryState.CONGESTED) is False


class TestRuntimeStateMachine:
    def make_runtime(self, detect=3):
        config = JarvisConfig(epoch=EpochConfig(detect_epochs=detect))
        return JarvisRuntime(NAMES, config=config)

    def test_initial_state(self):
        runtime = self.make_runtime()
        assert runtime.phase is RuntimePhase.STARTUP
        assert runtime.current_load_factors() == [0.0, 0.0, 0.0]
        assert runtime.wants_profile is False

    def test_needs_at_least_one_operator(self):
        with pytest.raises(PartitioningError):
            JarvisRuntime([])

    def test_startup_transitions_to_probe(self):
        runtime = self.make_runtime()
        runtime.on_epoch_end(obs_for([OperatorState.IDLE] * 3, epoch=0))
        assert runtime.phase is RuntimePhase.PROBE

    def test_detection_requires_consecutive_nonstable_epochs(self):
        runtime = self.make_runtime(detect=3)
        runtime.on_epoch_end(obs_for([OperatorState.IDLE] * 3, epoch=0))  # startup
        runtime.on_epoch_end(obs_for([OperatorState.IDLE] * 3, epoch=1))
        runtime.on_epoch_end(obs_for([OperatorState.STABLE] * 3, epoch=2))  # streak reset
        runtime.on_epoch_end(obs_for([OperatorState.IDLE] * 3, epoch=3))
        runtime.on_epoch_end(obs_for([OperatorState.IDLE] * 3, epoch=4))
        assert runtime.phase is RuntimePhase.PROBE
        runtime.on_epoch_end(obs_for([OperatorState.IDLE] * 3, epoch=5))
        assert runtime.phase is RuntimePhase.PROFILE
        assert runtime.wants_profile is True

    def test_idle_with_full_load_factors_does_not_trigger(self):
        runtime = self.make_runtime(detect=1)
        runtime.on_epoch_end(obs_for([OperatorState.IDLE] * 3, epoch=0))  # startup
        runtime.load_factors = [1.0, 1.0, 1.0]
        runtime.on_epoch_end(obs_for([OperatorState.IDLE] * 3, epoch=1))
        assert runtime.phase is RuntimePhase.PROBE

    def test_congestion_always_triggers_detection(self):
        runtime = self.make_runtime(detect=1)
        runtime.on_epoch_end(obs_for([OperatorState.STABLE] * 3, epoch=0))  # startup
        runtime.load_factors = [1.0, 1.0, 1.0]
        runtime.on_epoch_end(obs_for([OperatorState.CONGESTED] * 3, epoch=1))
        assert runtime.phase is RuntimePhase.PROFILE

    def _drive_to_adapt(self, runtime, budget=0.6):
        runtime.on_epoch_end(obs_for([OperatorState.IDLE] * 3, epoch=0, budget=budget))
        for epoch in range(1, 4):
            runtime.on_epoch_end(obs_for([OperatorState.IDLE] * 3, epoch=epoch, budget=budget))
        assert runtime.phase is RuntimePhase.PROFILE
        factors = runtime.on_epoch_end(
            obs_for(
                [OperatorState.IDLE] * 3,
                epoch=4,
                budget=budget,
                costs=S2S_COSTS,
                relays=S2S_RELAYS,
                processed=[1000, 1000, 860],
            )
        )
        return factors

    def test_profile_phase_applies_lp_plan(self):
        runtime = self.make_runtime()
        factors = self._drive_to_adapt(runtime, budget=0.6)
        assert runtime.phase is RuntimePhase.ADAPT
        assert factors[1] == pytest.approx(1.0, abs=1e-6)
        assert 0.0 < factors[2] < 1.0
        assert runtime.last_profile is not None

    def test_profile_without_measurements_stays_in_profile(self):
        runtime = self.make_runtime()
        for epoch in range(4):
            runtime.on_epoch_end(obs_for([OperatorState.IDLE] * 3, epoch=epoch))
        assert runtime.phase is RuntimePhase.PROFILE
        runtime.on_epoch_end(obs_for([OperatorState.IDLE] * 3, epoch=4))
        assert runtime.phase is RuntimePhase.PROFILE

    def test_adapt_returns_to_probe_when_stable(self):
        runtime = self.make_runtime()
        self._drive_to_adapt(runtime)
        runtime.on_epoch_end(obs_for([OperatorState.STABLE] * 3, epoch=5))
        assert runtime.phase is RuntimePhase.PROBE

    def test_adapt_fine_tunes_on_congestion(self):
        runtime = self.make_runtime()
        factors_before = self._drive_to_adapt(runtime)
        factors_after = runtime.on_epoch_end(
            obs_for([OperatorState.CONGESTED] * 3, epoch=5)
        )
        assert runtime.phase is RuntimePhase.ADAPT
        assert sum(factors_after) <= sum(factors_before)

    def test_reset_load_factors(self):
        runtime = self.make_runtime()
        self._drive_to_adapt(runtime)
        runtime.reset_load_factors()
        assert runtime.current_load_factors() == [0.0, 0.0, 0.0]
        assert runtime.phase is RuntimePhase.PROBE

    def test_observation_shape_mismatch_rejected(self):
        runtime = self.make_runtime()
        with pytest.raises(PartitioningError):
            runtime.on_epoch_end(obs_for([OperatorState.IDLE] * 2))

    def test_trace_records_every_epoch(self):
        runtime = self.make_runtime()
        for epoch in range(5):
            runtime.on_epoch_end(obs_for([OperatorState.IDLE] * 3, epoch=epoch))
        assert len(runtime.trace.epochs) == 5
        assert runtime.trace.total_adaptation_seconds() >= 0.0


class TestRuntimeTrace:
    def test_convergence_epochs(self):
        trace = RuntimeTrace()
        trace.append(0, RuntimePhase.PROBE, QueryState.IDLE, [0.0], 0.0)
        trace.append(1, RuntimePhase.ADAPT, QueryState.CONGESTED, [0.5], 0.0)
        trace.append(2, RuntimePhase.PROBE, QueryState.STABLE, [0.5], 0.0)
        assert trace.convergence_epochs(since_epoch=0) == 2
        assert trace.convergence_epochs(since_epoch=3) is None
