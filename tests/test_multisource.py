"""Tests for the true multi-source shared-link executor."""

from __future__ import annotations

import pytest

from repro.baselines import AllSPStrategy, StaticLoadFactorStrategy
from repro.errors import SimulationError
from repro.analysis.experiments import make_setup, make_strategy, run_single_source
from repro.simulation.cluster import ClusterModel
from repro.simulation.metrics import ClusterEpochMetrics, ClusterMetrics, RunMetrics
from repro.simulation.multisource import (
    MultiSourceConfig,
    MultiSourceExecutor,
    SourceSpec,
    homogeneous_sources,
)
from repro.simulation.network import SharedLink
from repro.simulation.node import StreamProcessorNode


@pytest.fixture(scope="module")
def setup():
    return make_setup("s2s_probe", records_per_epoch=120)


def build_executor(setup, specs, ingress_mbps=100.0, sp_cores=64, sp_compute_share=1.0):
    return MultiSourceExecutor(
        plan=setup.plan,
        cost_model=setup.cost_model,
        sources=specs,
        cluster_config=MultiSourceConfig(
            config=setup.config,
            stream_processor=StreamProcessorNode(
                cores=sp_cores, ingress_bandwidth_mbps=ingress_mbps
            ),
            sp_compute_share=sp_compute_share,
        ),
    )


def all_sp_specs(setup, num_sources, seed=10):
    return homogeneous_sources(
        num_sources,
        workload_factory=lambda i: setup.workload_factory(seed + i),
        strategy_factory=lambda i: AllSPStrategy(),
        budget=1.0,
    )


class TestConstruction:
    def test_requires_sources(self, setup):
        with pytest.raises(SimulationError):
            build_executor(setup, [])

    def test_rejects_duplicate_names(self, setup):
        specs = all_sp_specs(setup, 2)
        specs[1].name = specs[0].name
        with pytest.raises(SimulationError):
            build_executor(setup, specs)

    def test_rejects_shared_strategy_instance(self, setup):
        shared = AllSPStrategy()
        specs = [
            SourceSpec(name=f"s{i}", workload=setup.workload_factory(i), strategy=shared)
            for i in range(2)
        ]
        with pytest.raises(SimulationError):
            build_executor(setup, specs)

    def test_sp_compute_share_validated(self, setup):
        with pytest.raises(SimulationError):
            MultiSourceConfig(sp_compute_share=0.0)


class TestFairShareArbitration:
    def test_saturated_sources_each_get_fair_share(self, setup):
        """Equal contenders on a saturated link split it per fair_share_mbps."""
        num_sources = 3
        specs = all_sp_specs(setup, num_sources)
        # All-SP drains every record: per-source demand is the full input
        # (plus drain headers).  Size the link at ~1.5x one source's demand so
        # all three sources are permanently backlogged.
        per_source_demand = setup.input_rate_mbps * 1.2
        ingress = 1.5 * per_source_demand
        executor = build_executor(setup, specs, ingress_mbps=ingress)
        metrics = executor.run(20, warmup_epochs=5)

        link = SharedLink(total_bandwidth_mbps=ingress)
        fair_bytes = (
            link.fair_share_mbps(num_sources) * 1e6 / 8.0
        )  # bytes per 1s epoch
        for name, run in metrics.per_source.items():
            sent = [em.network_bytes_sent for em in run.measured_epochs()]
            mean_sent = sum(sent) / len(sent)
            # Record granularity keeps each epoch within a record of the share.
            assert mean_sent == pytest.approx(fair_bytes, rel=0.05), name

    def test_light_source_is_not_throttled(self, setup):
        """Max-min: an under-demand source keeps its demand; heavies split the rest."""
        light = SourceSpec(
            name="light",
            workload=setup.workload_factory(1),
            # Full local processing: only partial state / emitted bytes drain.
            strategy=StaticLoadFactorStrategy([1.0, 1.0, 1.0], name="light"),
            budget=1.0,
        )
        heavies = [
            SourceSpec(
                name=f"heavy-{i}",
                workload=setup.workload_factory(2 + i),
                strategy=AllSPStrategy(),
                budget=1.0,
            )
            for i in range(2)
        ]
        ingress = setup.input_rate_mbps * 1.4  # not enough for both heavies
        executor = build_executor(setup, [light] + heavies, ingress_mbps=ingress)
        metrics = executor.run(16, warmup_epochs=4)

        # The light source's average demand fits its fair share: its
        # window-boundary partial-state burst drains back to (near) zero
        # within the run instead of accumulating.  The heavies' backlogs only
        # ever grow, and max-min treats them identically.
        light_queues = [
            em.network_queue_bytes for em in metrics.per_source["light"].epochs
        ]
        assert light_queues[-1] < 0.2 * max(light_queues)
        for i in range(2):
            heavy_queues = [
                em.network_queue_bytes
                for em in metrics.per_source[f"heavy-{i}"].epochs
            ]
            assert heavy_queues[-1] == max(heavy_queues)
            assert heavy_queues[-1] > max(light_queues)
        # Both heavies stay saturated and get equal treatment.
        heavy_sent = [
            sum(em.network_bytes_sent for em in metrics.per_source[f"heavy-{i}"].measured_epochs())
            for i in range(2)
        ]
        assert heavy_sent[0] == pytest.approx(heavy_sent[1], rel=0.05)

    def test_total_sent_never_exceeds_capacity(self, setup):
        specs = all_sp_specs(setup, 4)
        ingress = setup.input_rate_mbps  # far below 4 sources' demand
        executor = build_executor(setup, specs, ingress_mbps=ingress)
        metrics = executor.run(12, warmup_epochs=0)
        capacity_bytes = ingress * 1e6 / 8.0
        for em in metrics.cluster_epochs:
            assert em.network_sent_bytes <= capacity_bytes + 1e-6


class TestRecordConservation:
    def test_uncongested_run_conserves_records(self, setup):
        specs = all_sp_specs(setup, 3)
        executor = build_executor(setup, specs, ingress_mbps=1000.0)
        executor.run(15, warmup_epochs=0)
        assert executor.verify_record_conservation() == []

    def test_congested_run_conserves_records(self, setup):
        """Relief fires repeatedly (partial and full overflow): no dup/loss."""
        specs = homogeneous_sources(
            3,
            workload_factory=lambda i: setup.workload_factory(30 + i),
            strategy_factory=lambda i: StaticLoadFactorStrategy(
                [1.0, 1.0, 1.0], name=f"static-{i}"
            ),
            budget=0.15,  # starved: backlog builds, relief drains overflow
        )
        executor = build_executor(setup, specs, ingress_mbps=0.2)
        executor.run(25, warmup_epochs=0)
        report = executor.record_conservation_report()
        assert executor.verify_record_conservation() == []
        # The scenario exercised the congestion-relief path.
        assert any(
            sum(stats["queue_drained_per_stage"]) > 0 for stats in report.values()
        )

    def test_adaptive_strategy_run_conserves_records(self, setup):
        specs = homogeneous_sources(
            2,
            workload_factory=lambda i: setup.workload_factory(60 + i),
            strategy_factory=lambda i: make_strategy("Jarvis", setup, 0.4),
            budget=0.4,
        )
        executor = build_executor(setup, specs, ingress_mbps=50.0)
        executor.run(20, warmup_epochs=0)
        assert executor.verify_record_conservation() == []


class _SilentWorkload:
    """A registered source that never produces records (zero demand)."""

    def records_for_epoch(self, epoch):
        return []


class TestPartialRecordShipping:
    def test_sp_items_only_contain_completed_record_bytes(self, setup):
        """Regression: a mid-record link exhaustion must not ship the partial
        head record's bytes to the SP backlog item."""
        from repro.query.records import record_size_bytes

        specs = all_sp_specs(setup, 2)
        # ~1.5 records of link capacity per epoch shared by two saturated
        # sources: allocations routinely die mid-record, and a starved SP
        # parks the shipped items so their recorded sizes stay inspectable.
        record_bytes = 86.0 + 16.0  # payload + drain header, roughly
        ingress = 1.5 * record_bytes * 8.0 / 1e6
        executor = build_executor(
            setup, specs, ingress_mbps=ingress, sp_compute_share=0.0001
        )
        checked = 0
        for _ in range(10):
            executor.run_epoch()
            for _, item in executor._sp_pending:
                if item.stage_index >= 0:
                    checked += 1
                    assert item.size_bytes == pytest.approx(
                        record_size_bytes(item.records, drain=True)
                    )
            assert executor.verify_record_conservation() == []
        assert checked > 0  # the scenario really parked record batches

    def test_partial_progress_stays_in_source_carryover(self, setup):
        """With less than one record of capacity, nothing reaches the SP and
        the crossed bytes remain accounted in the source's carryover."""
        specs = all_sp_specs(setup, 1)
        ingress = 0.0005  # 62.5 bytes/epoch, below one drained record
        executor = build_executor(setup, specs, ingress_mbps=ingress)
        metrics = executor.run_epoch()
        assert executor.sp_backlog_records() == 0
        (em,) = metrics.values()
        # The carryover queue still counts every enqueued byte: the sliver
        # that crossed the link belongs to an incomplete record.
        assert em.network_queue_bytes == pytest.approx(em.network_bytes_offered)
        assert em.network_bytes_sent == pytest.approx(62.5)
        assert executor.verify_record_conservation() == []

    def test_in_flight_progress_is_not_demanded_again(self, setup):
        """Regression: a head item's already-crossed bytes stay out of the
        fair-share demand, so the allocator never strands link capacity a
        backlogged peer could use."""
        from repro.query.records import record_size_bytes
        from repro.simulation.multisource import _TransferItem

        specs = [
            SourceSpec(
                name=f"quiet-{i}",
                workload=_SilentWorkload(),
                strategy=StaticLoadFactorStrategy(
                    [1.0, 1.0, 1.0], name=f"quiet-{i}"
                ),
                budget=1.0,
            )
            for i in range(2)
        ]
        capacity = 100.0  # bytes per epoch
        executor = build_executor(
            setup, specs, ingress_mbps=capacity * 8.0 / 1e6
        )
        records = setup.workload_factory(99).records_for_epoch(0)
        record = records[0]
        record_bytes = float(record_size_bytes([record], drain=True))

        # Source 0: one record nearly across the link (10 bytes remaining).
        # Source 1: a deep backlog.  With the in-flight progress re-demanded,
        # max-min would grant [50, 50] and waste 40 bytes of capacity.
        light, heavy = executor._sources
        light.carryover.append(
            _TransferItem(
                stage_index=0,
                records=[record],
                size_bytes=record_bytes,
                progress_bytes=record_bytes - 10.0,
            )
        )
        light.carryover_bytes = record_bytes
        heavy_batch = list(records[1:41])
        heavy_bytes = float(record_size_bytes(heavy_batch, drain=True))
        heavy.carryover.append(
            _TransferItem(stage_index=0, records=heavy_batch, size_bytes=heavy_bytes)
        )
        heavy.carryover_bytes = heavy_bytes
        executor.link.offer(10.0 + heavy_bytes)  # bytes still to cross

        executor.run_epoch()
        assert executor._last_cluster_epoch.network_sent_bytes == pytest.approx(
            capacity
        )

    def test_forced_mid_record_exhaustion_conserves_records(self, setup):
        """Property: conservation holds across many epochs of tiny allocations
        (records take several epochs to cross, one completes at a time)."""
        specs = all_sp_specs(setup, 2, seed=40)
        executor = build_executor(setup, specs, ingress_mbps=0.002)
        for _ in range(25):
            executor.run_epoch()
            assert executor.verify_record_conservation() == []
        assert executor.sp_backlog_records() >= 0


class TestFreeItemsNeverBlock:
    def test_free_items_drain_past_capped_batches(self, setup):
        """Regression: state merges / final records queued behind record
        batches parked at the SP compute cap must still drain this epoch."""
        heavies = [
            SourceSpec(
                name=f"heavy-{i}",
                workload=setup.workload_factory(1 + i),
                strategy=AllSPStrategy(),
                budget=1.0,
            )
            for i in range(2)
        ]
        local = SourceSpec(
            name="local",
            workload=setup.workload_factory(3),
            strategy=StaticLoadFactorStrategy([1.0, 1.0, 1.0], name="local"),
            budget=1.0,
        )
        executor = MultiSourceExecutor(
            plan=setup.plan,
            cost_model=setup.cost_model,
            sources=heavies + [local],
            cluster_config=MultiSourceConfig(
                config=setup.config,
                stream_processor=StreamProcessorNode(ingress_bandwidth_mbps=1000.0),
                sp_compute_share=0.0001,  # batches park at the compute cap
            ),
        )
        saw_backlog = False
        for _ in range(25):
            executor.run_epoch()
            # Only record batches may remain parked; every free item (-1/-2)
            # shipped this epoch must have been drained despite the cap.
            assert all(
                item.stage_index >= 0 for _, item in executor._sp_pending
            )
            assert len(executor._sp_free) == 0
            saw_backlog = saw_backlog or executor.sp_backlog_records() > 0
        assert saw_backlog
        assert executor.verify_record_conservation() == []


class TestZeroByteItems:
    def test_zero_byte_state_item_ships_without_allocation(self, setup):
        """Regression: a zero-byte transfer item at the carryover head of a
        source with no byte demand (fair share grants it 0 bytes) must still
        be delivered — pre-fix it parked forever and froze the source's
        watermark."""
        import math

        from repro.simulation.multisource import _TransferItem

        spec = SourceSpec(
            name="quiet",
            workload=_SilentWorkload(),
            strategy=StaticLoadFactorStrategy([1.0, 1.0, 1.0], name="quiet"),
            budget=1.0,
        )
        executor = build_executor(setup, [spec], ingress_mbps=100.0)
        runtime = executor._sources[0]
        # The scenario behind the bug: partial_state_bytes == 0 with a
        # non-empty partial_states map enqueues a size-0 state item.
        runtime.carryover.append(
            _TransferItem(stage_index=-2, state=None, state_stage=0, size_bytes=0.0)
        )
        runtime.watermark = 42.0
        for _ in range(3):
            executor.run_epoch()
        assert not runtime.carryover
        assert len(executor._sp_free) == 0
        # With the carryover finally empty, the watermark advances too.
        merged = executor.sp_pipeline.watermarks._watermarks["quiet:forwarded"]
        assert merged == pytest.approx(42.0)
        assert not math.isinf(merged)

    def test_zero_byte_head_does_not_block_real_data(self, setup):
        """A zero-byte head item followed by a real batch: both ship in the
        epoch their bytes fit, with conservation intact."""
        from repro.query.records import record_size_bytes
        from repro.simulation.multisource import _TransferItem

        spec = SourceSpec(
            name="quiet",
            workload=_SilentWorkload(),
            strategy=StaticLoadFactorStrategy([1.0, 1.0, 1.0], name="quiet"),
            budget=1.0,
        )
        executor = build_executor(setup, [spec], ingress_mbps=100.0)
        runtime = executor._sources[0]
        records = setup.workload_factory(7).records_for_epoch(0)[:3]
        batch_bytes = float(record_size_bytes(records, drain=True))
        runtime.carryover.append(
            _TransferItem(stage_index=-2, state=None, state_stage=0, size_bytes=0.0)
        )
        runtime.carryover.append(
            _TransferItem(stage_index=0, records=list(records), size_bytes=batch_bytes)
        )
        runtime.carryover_bytes = batch_bytes
        runtime.drained_records += len(records)
        executor.link.offer(batch_bytes)
        executor.run_epoch()
        assert not runtime.carryover
        assert runtime.sp_processed_records == len(records)
        assert executor.verify_record_conservation() == []


class TestNetworkDelayAccounting:
    def test_network_delay_counts_only_uncrossed_bytes(self, setup):
        """Regression: the latency estimate must exclude the head item's
        already-crossed progress bytes, mirroring the demand-side fix."""
        from repro.simulation.multisource import _TransferItem

        spec = SourceSpec(
            name="quiet",
            workload=_SilentWorkload(),
            strategy=StaticLoadFactorStrategy([1.0, 1.0, 1.0], name="quiet"),
            budget=1.0,
        )
        capacity = 100.0  # bytes per epoch
        executor = build_executor(setup, [spec], ingress_mbps=capacity * 8.0 / 1e6)
        runtime = executor._sources[0]
        blob_bytes = 1000.0
        runtime.carryover.append(
            _TransferItem(
                stage_index=-2, state=None, state_stage=0, size_bytes=blob_bytes
            )
        )
        runtime.carryover_bytes = blob_bytes
        executor.link.offer(blob_bytes)

        metrics = executor.run_epoch()
        em = metrics["quiet"]
        # One epoch moved `capacity` bytes of the blob; the full blob stays
        # in carryover_bytes (it only completes when all bytes cross) but
        # only the uncrossed remainder contributes transfer delay.
        assert em.network_bytes_sent == pytest.approx(capacity)
        assert em.network_queue_bytes == pytest.approx(blob_bytes)
        epoch_s = setup.config.epoch.duration_s
        rate = executor.link.bytes_per_second
        expected = 0.5 * epoch_s + (blob_bytes - capacity) / rate
        buggy = 0.5 * epoch_s + blob_bytes / rate
        assert em.latency_s == pytest.approx(expected)
        assert em.latency_s != pytest.approx(buggy)


class TestRunReuseGuard:
    def test_run_twice_raises(self, setup):
        executor = build_executor(setup, all_sp_specs(setup, 1))
        executor.run(3, warmup_epochs=0)
        with pytest.raises(SimulationError, match="fresh executor"):
            executor.run(3, warmup_epochs=0)

    def test_run_after_run_epoch_raises(self, setup):
        executor = build_executor(setup, all_sp_specs(setup, 1))
        executor.run_epoch()
        with pytest.raises(SimulationError, match="fresh executor"):
            executor.run(3, warmup_epochs=0)

    def test_run_epoch_stepping_stays_allowed(self, setup):
        """Lockstep drivers may keep calling run_epoch; only run() is guarded."""
        executor = build_executor(setup, all_sp_specs(setup, 1))
        for _ in range(3):
            executor.run_epoch()
        assert executor.epochs_run == 3


class TestContentionAwareFairRate:
    def test_idle_sources_do_not_inflate_latency(self, setup):
        """Regression: the network-delay estimate divides the link among the
        sources that contended this epoch, not the whole registered fleet."""
        active = SourceSpec(
            name="active",
            workload=setup.workload_factory(3),
            strategy=AllSPStrategy(),
            budget=1.0,
        )
        idle = [
            SourceSpec(
                name=f"idle-{i}",
                workload=_SilentWorkload(),
                strategy=StaticLoadFactorStrategy([1.0, 1.0, 1.0], name=f"idle-{i}"),
                budget=1.0,
            )
            for i in range(3)
        ]
        ingress = 0.5 * setup.input_rate_mbps  # active source saturates alone
        executor = build_executor(setup, [active] + idle, ingress_mbps=ingress)
        epoch_s = setup.config.epoch.duration_s
        for _ in range(5):
            metrics = executor.run_epoch()
        em = metrics["active"]
        assert executor.sp_backlog_records() == 0  # ample SP compute
        # All-SP drains at the proxy: no source backlog, no SP backlog — the
        # latency is exactly batching delay plus draining the still-to-cross
        # carryover bytes at the full link rate (one contender), not at a 1/4
        # fleet share and not re-counting the head item's crossed progress.
        active = executor._sources_by_name["active"]
        expected = 0.5 * epoch_s + executor._remaining_demand(active) / (
            executor.link.bytes_per_second
        )
        assert em.latency_s == pytest.approx(expected)


class TestAnalyticAgreement:
    def test_matches_cluster_model_below_knee(self, setup):
        """Acceptance: N identical sources within 10% of ClusterModel.scale()."""
        num_sources = 3
        budget = 0.5
        sp_node = StreamProcessorNode(ingress_bandwidth_mbps=100.0)

        per_source = run_single_source(
            setup,
            "Best-OP",
            budget,
            num_epochs=20,
            warmup_epochs=6,
            bandwidth_mbps=4.0 * setup.input_rate_mbps,
        )
        analytic = ClusterModel(
            sp_node, epoch_duration_s=setup.config.epoch.duration_s
        ).scale(per_source, num_sources)
        assert not analytic.saturated  # below the knee by construction

        specs = homogeneous_sources(
            num_sources,
            workload_factory=lambda i: setup.workload_factory(1 + i),
            strategy_factory=lambda i: make_strategy("Best-OP", setup, budget),
            budget=budget,
        )
        executor = MultiSourceExecutor(
            plan=setup.plan,
            cost_model=setup.cost_model,
            sources=specs,
            cluster_config=MultiSourceConfig(
                config=setup.config, stream_processor=sp_node
            ),
        )
        simulated = executor.run(20, warmup_epochs=6)

        assert simulated.aggregate_throughput_mbps() == pytest.approx(
            analytic.aggregate_throughput_mbps, rel=0.10
        )

    def test_sp_compute_saturation_degrades_goodput(self, setup):
        """A compute-bound SP must show up in goodput, not just in backlog."""
        specs = all_sp_specs(setup, 2)
        executor = MultiSourceExecutor(
            plan=setup.plan,
            cost_model=setup.cost_model,
            sources=specs,
            cluster_config=MultiSourceConfig(
                config=setup.config,
                stream_processor=StreamProcessorNode(ingress_bandwidth_mbps=1000.0),
                sp_compute_share=0.0001,  # the link is ample; compute is not
            ),
        )
        metrics = executor.run(15, warmup_epochs=3)
        assert executor.sp_backlog_records() > 0
        assert (
            metrics.aggregate_throughput_mbps()
            <= 0.6 * metrics.aggregate_offered_mbps()
        )
        assert executor.verify_record_conservation() == []

    def test_contention_degrades_throughput_vs_analytic_expectation(self, setup):
        """Above the knee the simulated aggregate falls below N x offered."""
        specs = all_sp_specs(setup, 5)
        executor = build_executor(setup, specs, ingress_mbps=setup.input_rate_mbps)
        metrics = executor.run(16, warmup_epochs=4)
        assert (
            metrics.aggregate_throughput_mbps()
            < 0.9 * metrics.aggregate_offered_mbps()
        )
        assert metrics.network_utilization() > 0.9


class TestHeterogeneousSources:
    def test_per_source_budgets_yield_per_source_throughput(self, setup):
        rich = SourceSpec(
            name="rich",
            workload=setup.workload_factory(5),
            strategy=StaticLoadFactorStrategy([1.0, 1.0, 1.0], name="rich"),
            budget=1.0,
        )
        poor = SourceSpec(
            name="poor",
            workload=setup.workload_factory(6),
            strategy=StaticLoadFactorStrategy([1.0, 1.0, 1.0], name="poor"),
            budget=0.1,
        )
        executor = build_executor(setup, [rich, poor], ingress_mbps=0.5)
        metrics = executor.run(20, warmup_epochs=5)
        assert (
            metrics.per_source["rich"].throughput_mbps()
            > metrics.per_source["poor"].throughput_mbps()
        )

    def test_budget_schedules_are_per_source(self, setup):
        from repro.simulation.node import BudgetSchedule

        stepped = SourceSpec(
            name="stepped",
            workload=setup.workload_factory(7),
            strategy=StaticLoadFactorStrategy([1.0, 1.0, 1.0], name="stepped"),
            budget=BudgetSchedule([(0, 0.1), (5, 1.0)]),
        )
        flat = SourceSpec(
            name="flat",
            workload=setup.workload_factory(8),
            strategy=StaticLoadFactorStrategy([1.0, 1.0, 1.0], name="flat"),
            budget=1.0,
        )
        executor = build_executor(setup, [stepped, flat], ingress_mbps=100.0)
        metrics = executor.run(10, warmup_epochs=0)
        stepped_epochs = metrics.per_source["stepped"].epochs
        assert stepped_epochs[0].cpu_budget_seconds == pytest.approx(0.1)
        assert stepped_epochs[6].cpu_budget_seconds == pytest.approx(1.0)


class TestClusterMetrics:
    def make_run(self, latency=1.0):
        run = RunMetrics(epoch_duration_s=1.0)
        from repro.simulation.metrics import EpochMetrics

        for epoch in range(4):
            run.record(
                EpochMetrics(
                    epoch=epoch,
                    input_bytes=1000.0,
                    goodput_bytes=800.0,
                    network_bytes_offered=100.0,
                    network_bytes_sent=100.0,
                    network_queue_bytes=0.0,
                    cpu_used_seconds=0.5,
                    cpu_budget_seconds=1.0,
                    sp_cpu_seconds=0.1,
                    source_backlog_records=0,
                    latency_s=latency,
                )
            )
        return run

    def make_cluster(self):
        cluster = ClusterMetrics(epoch_duration_s=1.0)
        cluster.register_source("a", self.make_run(latency=1.0))
        cluster.register_source("b", self.make_run(latency=3.0))
        for epoch in range(4):
            cluster.record_cluster_epoch(
                ClusterEpochMetrics(
                    epoch=epoch,
                    network_offered_bytes=200.0,
                    network_sent_bytes=150.0,
                    network_queued_bytes=50.0,
                    network_capacity_bytes=300.0,
                    sp_cpu_used_seconds=0.2,
                    sp_cpu_capacity_seconds=1.0,
                    sp_backlog_records=5,
                )
            )
        return cluster

    def test_aggregates_sum_per_source(self):
        cluster = self.make_cluster()
        assert cluster.num_sources == 2
        single = self.make_run().throughput_mbps()
        assert cluster.aggregate_throughput_mbps() == pytest.approx(2 * single)

    def test_shared_resource_utilisation(self):
        cluster = self.make_cluster()
        assert cluster.network_utilization() == pytest.approx(0.5)
        assert cluster.sp_cpu_utilization() == pytest.approx(0.2)

    def test_latency_distribution(self):
        cluster = self.make_cluster()
        assert cluster.median_latency_s() == pytest.approx(2.0)
        assert cluster.max_latency_s() == pytest.approx(3.0)
        assert cluster.latency_percentile_s(1.0) == pytest.approx(3.0)
        per_source = cluster.per_source_latency_s()
        assert per_source == {"a": pytest.approx(1.0), "b": pytest.approx(3.0)}

    def test_duplicate_source_rejected(self):
        cluster = self.make_cluster()
        with pytest.raises(SimulationError):
            cluster.register_source("a", self.make_run())

    def test_summary_fields(self):
        summary = self.make_cluster().summary()
        for key in (
            "num_sources",
            "aggregate_throughput_mbps",
            "network_utilization",
            "sp_cpu_utilization",
            "median_latency_s",
            "p95_latency_s",
            "max_latency_s",
        ):
            assert key in summary
