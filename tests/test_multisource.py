"""Tests for the true multi-source shared-link executor."""

from __future__ import annotations

import pytest

from repro.baselines import AllSPStrategy, StaticLoadFactorStrategy
from repro.errors import SimulationError
from repro.analysis.experiments import make_setup, make_strategy, run_single_source
from repro.simulation.cluster import ClusterModel
from repro.simulation.metrics import ClusterEpochMetrics, ClusterMetrics, RunMetrics
from repro.simulation.multisource import (
    MultiSourceConfig,
    MultiSourceExecutor,
    SourceSpec,
    homogeneous_sources,
)
from repro.simulation.network import SharedLink
from repro.simulation.node import StreamProcessorNode


@pytest.fixture(scope="module")
def setup():
    return make_setup("s2s_probe", records_per_epoch=120)


def build_executor(setup, specs, ingress_mbps=100.0, sp_cores=64):
    return MultiSourceExecutor(
        plan=setup.plan,
        cost_model=setup.cost_model,
        sources=specs,
        cluster_config=MultiSourceConfig(
            config=setup.config,
            stream_processor=StreamProcessorNode(
                cores=sp_cores, ingress_bandwidth_mbps=ingress_mbps
            ),
        ),
    )


def all_sp_specs(setup, num_sources, seed=10):
    return homogeneous_sources(
        num_sources,
        workload_factory=lambda i: setup.workload_factory(seed + i),
        strategy_factory=lambda i: AllSPStrategy(),
        budget=1.0,
    )


class TestConstruction:
    def test_requires_sources(self, setup):
        with pytest.raises(SimulationError):
            build_executor(setup, [])

    def test_rejects_duplicate_names(self, setup):
        specs = all_sp_specs(setup, 2)
        specs[1].name = specs[0].name
        with pytest.raises(SimulationError):
            build_executor(setup, specs)

    def test_rejects_shared_strategy_instance(self, setup):
        shared = AllSPStrategy()
        specs = [
            SourceSpec(name=f"s{i}", workload=setup.workload_factory(i), strategy=shared)
            for i in range(2)
        ]
        with pytest.raises(SimulationError):
            build_executor(setup, specs)

    def test_sp_compute_share_validated(self, setup):
        with pytest.raises(SimulationError):
            MultiSourceConfig(sp_compute_share=0.0)


class TestFairShareArbitration:
    def test_saturated_sources_each_get_fair_share(self, setup):
        """Equal contenders on a saturated link split it per fair_share_mbps."""
        num_sources = 3
        specs = all_sp_specs(setup, num_sources)
        # All-SP drains every record: per-source demand is the full input
        # (plus drain headers).  Size the link at ~1.5x one source's demand so
        # all three sources are permanently backlogged.
        per_source_demand = setup.input_rate_mbps * 1.2
        ingress = 1.5 * per_source_demand
        executor = build_executor(setup, specs, ingress_mbps=ingress)
        metrics = executor.run(20, warmup_epochs=5)

        link = SharedLink(total_bandwidth_mbps=ingress)
        fair_bytes = (
            link.fair_share_mbps(num_sources) * 1e6 / 8.0
        )  # bytes per 1s epoch
        for name, run in metrics.per_source.items():
            sent = [em.network_bytes_sent for em in run.measured_epochs()]
            mean_sent = sum(sent) / len(sent)
            # Record granularity keeps each epoch within a record of the share.
            assert mean_sent == pytest.approx(fair_bytes, rel=0.05), name

    def test_light_source_is_not_throttled(self, setup):
        """Max-min: an under-demand source keeps its demand; heavies split the rest."""
        light = SourceSpec(
            name="light",
            workload=setup.workload_factory(1),
            # Full local processing: only partial state / emitted bytes drain.
            strategy=StaticLoadFactorStrategy([1.0, 1.0, 1.0], name="light"),
            budget=1.0,
        )
        heavies = [
            SourceSpec(
                name=f"heavy-{i}",
                workload=setup.workload_factory(2 + i),
                strategy=AllSPStrategy(),
                budget=1.0,
            )
            for i in range(2)
        ]
        ingress = setup.input_rate_mbps * 1.4  # not enough for both heavies
        executor = build_executor(setup, [light] + heavies, ingress_mbps=ingress)
        metrics = executor.run(16, warmup_epochs=4)

        # The light source's average demand fits its fair share: its
        # window-boundary partial-state burst drains back to (near) zero
        # within the run instead of accumulating.  The heavies' backlogs only
        # ever grow, and max-min treats them identically.
        light_queues = [
            em.network_queue_bytes for em in metrics.per_source["light"].epochs
        ]
        assert light_queues[-1] < 0.2 * max(light_queues)
        for i in range(2):
            heavy_queues = [
                em.network_queue_bytes
                for em in metrics.per_source[f"heavy-{i}"].epochs
            ]
            assert heavy_queues[-1] == max(heavy_queues)
            assert heavy_queues[-1] > max(light_queues)
        # Both heavies stay saturated and get equal treatment.
        heavy_sent = [
            sum(em.network_bytes_sent for em in metrics.per_source[f"heavy-{i}"].measured_epochs())
            for i in range(2)
        ]
        assert heavy_sent[0] == pytest.approx(heavy_sent[1], rel=0.05)

    def test_total_sent_never_exceeds_capacity(self, setup):
        specs = all_sp_specs(setup, 4)
        ingress = setup.input_rate_mbps  # far below 4 sources' demand
        executor = build_executor(setup, specs, ingress_mbps=ingress)
        metrics = executor.run(12, warmup_epochs=0)
        capacity_bytes = ingress * 1e6 / 8.0
        for em in metrics.cluster_epochs:
            assert em.network_sent_bytes <= capacity_bytes + 1e-6


class TestRecordConservation:
    def test_uncongested_run_conserves_records(self, setup):
        specs = all_sp_specs(setup, 3)
        executor = build_executor(setup, specs, ingress_mbps=1000.0)
        executor.run(15, warmup_epochs=0)
        assert executor.verify_record_conservation() == []

    def test_congested_run_conserves_records(self, setup):
        """Relief fires repeatedly (partial and full overflow): no dup/loss."""
        specs = homogeneous_sources(
            3,
            workload_factory=lambda i: setup.workload_factory(30 + i),
            strategy_factory=lambda i: StaticLoadFactorStrategy(
                [1.0, 1.0, 1.0], name=f"static-{i}"
            ),
            budget=0.15,  # starved: backlog builds, relief drains overflow
        )
        executor = build_executor(setup, specs, ingress_mbps=0.2)
        executor.run(25, warmup_epochs=0)
        report = executor.record_conservation_report()
        assert executor.verify_record_conservation() == []
        # The scenario exercised the congestion-relief path.
        assert any(
            sum(stats["queue_drained_per_stage"]) > 0 for stats in report.values()
        )

    def test_adaptive_strategy_run_conserves_records(self, setup):
        specs = homogeneous_sources(
            2,
            workload_factory=lambda i: setup.workload_factory(60 + i),
            strategy_factory=lambda i: make_strategy("Jarvis", setup, 0.4),
            budget=0.4,
        )
        executor = build_executor(setup, specs, ingress_mbps=50.0)
        executor.run(20, warmup_epochs=0)
        assert executor.verify_record_conservation() == []


class TestAnalyticAgreement:
    def test_matches_cluster_model_below_knee(self, setup):
        """Acceptance: N identical sources within 10% of ClusterModel.scale()."""
        num_sources = 3
        budget = 0.5
        sp_node = StreamProcessorNode(ingress_bandwidth_mbps=100.0)

        per_source = run_single_source(
            setup,
            "Best-OP",
            budget,
            num_epochs=20,
            warmup_epochs=6,
            bandwidth_mbps=4.0 * setup.input_rate_mbps,
        )
        analytic = ClusterModel(
            sp_node, epoch_duration_s=setup.config.epoch.duration_s
        ).scale(per_source, num_sources)
        assert not analytic.saturated  # below the knee by construction

        specs = homogeneous_sources(
            num_sources,
            workload_factory=lambda i: setup.workload_factory(1 + i),
            strategy_factory=lambda i: make_strategy("Best-OP", setup, budget),
            budget=budget,
        )
        executor = MultiSourceExecutor(
            plan=setup.plan,
            cost_model=setup.cost_model,
            sources=specs,
            cluster_config=MultiSourceConfig(
                config=setup.config, stream_processor=sp_node
            ),
        )
        simulated = executor.run(20, warmup_epochs=6)

        assert simulated.aggregate_throughput_mbps() == pytest.approx(
            analytic.aggregate_throughput_mbps, rel=0.10
        )

    def test_sp_compute_saturation_degrades_goodput(self, setup):
        """A compute-bound SP must show up in goodput, not just in backlog."""
        specs = all_sp_specs(setup, 2)
        executor = MultiSourceExecutor(
            plan=setup.plan,
            cost_model=setup.cost_model,
            sources=specs,
            cluster_config=MultiSourceConfig(
                config=setup.config,
                stream_processor=StreamProcessorNode(ingress_bandwidth_mbps=1000.0),
                sp_compute_share=0.0001,  # the link is ample; compute is not
            ),
        )
        metrics = executor.run(15, warmup_epochs=3)
        assert executor.sp_backlog_records() > 0
        assert (
            metrics.aggregate_throughput_mbps()
            <= 0.6 * metrics.aggregate_offered_mbps()
        )
        assert executor.verify_record_conservation() == []

    def test_contention_degrades_throughput_vs_analytic_expectation(self, setup):
        """Above the knee the simulated aggregate falls below N x offered."""
        specs = all_sp_specs(setup, 5)
        executor = build_executor(setup, specs, ingress_mbps=setup.input_rate_mbps)
        metrics = executor.run(16, warmup_epochs=4)
        assert (
            metrics.aggregate_throughput_mbps()
            < 0.9 * metrics.aggregate_offered_mbps()
        )
        assert metrics.network_utilization() > 0.9


class TestHeterogeneousSources:
    def test_per_source_budgets_yield_per_source_throughput(self, setup):
        rich = SourceSpec(
            name="rich",
            workload=setup.workload_factory(5),
            strategy=StaticLoadFactorStrategy([1.0, 1.0, 1.0], name="rich"),
            budget=1.0,
        )
        poor = SourceSpec(
            name="poor",
            workload=setup.workload_factory(6),
            strategy=StaticLoadFactorStrategy([1.0, 1.0, 1.0], name="poor"),
            budget=0.1,
        )
        executor = build_executor(setup, [rich, poor], ingress_mbps=0.5)
        metrics = executor.run(20, warmup_epochs=5)
        assert (
            metrics.per_source["rich"].throughput_mbps()
            > metrics.per_source["poor"].throughput_mbps()
        )

    def test_budget_schedules_are_per_source(self, setup):
        from repro.simulation.node import BudgetSchedule

        stepped = SourceSpec(
            name="stepped",
            workload=setup.workload_factory(7),
            strategy=StaticLoadFactorStrategy([1.0, 1.0, 1.0], name="stepped"),
            budget=BudgetSchedule([(0, 0.1), (5, 1.0)]),
        )
        flat = SourceSpec(
            name="flat",
            workload=setup.workload_factory(8),
            strategy=StaticLoadFactorStrategy([1.0, 1.0, 1.0], name="flat"),
            budget=1.0,
        )
        executor = build_executor(setup, [stepped, flat], ingress_mbps=100.0)
        metrics = executor.run(10, warmup_epochs=0)
        stepped_epochs = metrics.per_source["stepped"].epochs
        assert stepped_epochs[0].cpu_budget_seconds == pytest.approx(0.1)
        assert stepped_epochs[6].cpu_budget_seconds == pytest.approx(1.0)


class TestClusterMetrics:
    def make_run(self, latency=1.0):
        run = RunMetrics(epoch_duration_s=1.0)
        from repro.simulation.metrics import EpochMetrics

        for epoch in range(4):
            run.record(
                EpochMetrics(
                    epoch=epoch,
                    input_bytes=1000.0,
                    goodput_bytes=800.0,
                    network_bytes_offered=100.0,
                    network_bytes_sent=100.0,
                    network_queue_bytes=0.0,
                    cpu_used_seconds=0.5,
                    cpu_budget_seconds=1.0,
                    sp_cpu_seconds=0.1,
                    source_backlog_records=0,
                    latency_s=latency,
                )
            )
        return run

    def make_cluster(self):
        cluster = ClusterMetrics(epoch_duration_s=1.0)
        cluster.register_source("a", self.make_run(latency=1.0))
        cluster.register_source("b", self.make_run(latency=3.0))
        for epoch in range(4):
            cluster.record_cluster_epoch(
                ClusterEpochMetrics(
                    epoch=epoch,
                    network_offered_bytes=200.0,
                    network_sent_bytes=150.0,
                    network_queued_bytes=50.0,
                    network_capacity_bytes=300.0,
                    sp_cpu_used_seconds=0.2,
                    sp_cpu_capacity_seconds=1.0,
                    sp_backlog_records=5,
                )
            )
        return cluster

    def test_aggregates_sum_per_source(self):
        cluster = self.make_cluster()
        assert cluster.num_sources == 2
        single = self.make_run().throughput_mbps()
        assert cluster.aggregate_throughput_mbps() == pytest.approx(2 * single)

    def test_shared_resource_utilisation(self):
        cluster = self.make_cluster()
        assert cluster.network_utilization() == pytest.approx(0.5)
        assert cluster.sp_cpu_utilization() == pytest.approx(0.2)

    def test_latency_distribution(self):
        cluster = self.make_cluster()
        assert cluster.median_latency_s() == pytest.approx(2.0)
        assert cluster.max_latency_s() == pytest.approx(3.0)
        assert cluster.latency_percentile_s(1.0) == pytest.approx(3.0)
        per_source = cluster.per_source_latency_s()
        assert per_source == {"a": pytest.approx(1.0), "b": pytest.approx(3.0)}

    def test_duplicate_source_rejected(self):
        cluster = self.make_cluster()
        with pytest.raises(SimulationError):
            cluster.register_source("a", self.make_run())

    def test_summary_fields(self):
        summary = self.make_cluster().summary()
        for key in (
            "num_sources",
            "aggregate_throughput_mbps",
            "network_utilization",
            "sp_cpu_utilization",
            "median_latency_s",
            "p95_latency_s",
            "max_latency_s",
        ):
            assert key in summary
