"""Self-tests for the simlint static checker (``tools/simlint``).

Fixture files under ``tests/simlint_fixtures/`` mark every expected violation
with a trailing ``# expect: RULE`` comment; the tests assert that simlint
reports exactly those (line, rule) pairs — no more, no fewer — and that the
known-good twin of each fixture is completely clean.  A separate test runs
the real CLI over ``src/`` and requires a clean exit, so the repository can
never drift out of compliance with its own rules.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

import pytest

from simlint import ALL_RULES, lint_source, rules_by_id
from simlint.core import Violation, derive_module_path

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE_DIR = Path(__file__).resolve().parent / "simlint_fixtures"
EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<rules>[A-Z0-9, ]+)")

BAD_FIXTURES = sorted(FIXTURE_DIR.glob("*_bad.py"))
GOOD_FIXTURES = sorted(FIXTURE_DIR.glob("*_good.py"))


def expected_pairs(source: str) -> set:
    """(line, rule) pairs declared by ``# expect:`` markers in a fixture."""
    pairs = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = EXPECT_RE.search(line)
        if not match:
            continue
        for rule_id in match.group("rules").split(","):
            pairs.add((lineno, rule_id.strip()))
    return pairs


def reported_pairs(violations) -> set:
    return {(v.line, v.rule_id) for v in violations}


class TestFixtures:
    def test_fixture_suite_is_present(self):
        assert len(BAD_FIXTURES) == 11
        assert len(GOOD_FIXTURES) == 11

    @pytest.mark.parametrize("path", BAD_FIXTURES, ids=lambda p: p.stem)
    def test_bad_fixture_reports_exact_lines(self, path):
        source = path.read_text()
        expected = expected_pairs(source)
        assert expected, f"{path.name} declares no expected violations"
        violations = lint_source(source, display_path=str(path))
        assert reported_pairs(violations) == expected

    @pytest.mark.parametrize("path", GOOD_FIXTURES, ids=lambda p: p.stem)
    def test_good_fixture_is_clean(self, path):
        source = path.read_text()
        assert expected_pairs(source) == set()
        assert lint_source(source, display_path=str(path)) == []

    def test_every_rule_has_a_firing_fixture(self):
        covered = set()
        for path in BAD_FIXTURES:
            covered |= {rule for _, rule in expected_pairs(path.read_text())}
        assert covered == {rule.id for rule in ALL_RULES}


class TestSuppression:
    BAD_LINE = "def f(n):\n    return round(n * 0.5)\n"

    def test_line_suppression(self):
        source = (
            "# simlint-fixture-path: repro/x.py\n"
            "def f(n):\n"
            "    return round(n * 0.5)  # simlint: disable=SL004\n"
        )
        assert lint_source(source, "x.py") == []

    def test_file_suppression(self):
        source = (
            "# simlint-fixture-path: repro/x.py\n"
            "# simlint: disable-file=SL004\n" + self.BAD_LINE
        )
        assert lint_source(source, "x.py") == []

    def test_suppressing_one_rule_keeps_others(self):
        source = (
            "# simlint-fixture-path: repro/x.py\n"
            "# simlint: disable-file=SL007\n"
            "def f(n):\n"
            "    return round(n * 0.5)\n"
        )
        assert [v.rule_id for v in lint_source(source, "x.py")] == ["SL004"]

    def test_unsuppressed_fires(self):
        source = "# simlint-fixture-path: repro/x.py\n" + self.BAD_LINE
        violations = lint_source(source, "x.py")
        assert [v.rule_id for v in violations] == ["SL004"]
        assert violations[0].line == 3


class TestEngine:
    def test_module_path_derivation(self):
        assert (
            derive_module_path(Path("src/repro/simulation/engine.py"))
            == "repro/simulation/engine.py"
        )
        assert derive_module_path(Path("/tmp/scratch.py")) == "scratch.py"

    def test_render_format(self):
        violation = Violation("src/x.py", 3, 7, "SL004", "message text")
        assert violation.render() == "src/x.py:3:7 SL004 message text"

    def test_rules_by_id_selects_subset(self):
        rules = rules_by_id(["sl004", "SL007"])
        assert [rule.id for rule in rules] == ["SL004", "SL007"]

    def test_rules_by_id_rejects_unknown(self):
        with pytest.raises(KeyError):
            rules_by_id(["SL999"])

    def test_syntax_error_is_reported_not_raised(self):
        violations = lint_source("def f(:\n", "broken.py")
        assert [v.rule_id for v in violations] == ["SL000"]

    def test_rule_scoping_tests_are_exempt(self):
        # A file outside the repro package (e.g. a test) is never linted.
        assert lint_source("raise ValueError('x')\n", "tests/test_x.py") == []


class TestCli:
    def run_cli(self, *args, cwd=REPO_ROOT):
        env_path = str(REPO_ROOT / "tools")
        return subprocess.run(
            [sys.executable, "-m", "simlint", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
            env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
        )

    def test_repo_src_is_clean(self):
        result = self.run_cli("src/", "benchmarks/")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_violations_set_exit_code_and_format(self, tmp_path):
        bad = tmp_path / "repro" / "routing.py"
        bad.parent.mkdir()
        bad.write_text("def f(n):\n    return round(n * 0.5)\n")
        result = self.run_cli(str(bad))
        assert result.returncode == 1
        assert re.match(
            rf"{re.escape(str(bad))}:2:11 SL004 ", result.stdout.splitlines()[0]
        )

    def test_select_restricts_rules(self, tmp_path):
        bad = tmp_path / "repro" / "routing.py"
        bad.parent.mkdir()
        bad.write_text(
            "def f(n):\n"
            "    if n <= 0:\n"
            "        raise ValueError('n')\n"
            "    return round(n * 0.5)\n"
        )
        result = self.run_cli("--select", "SL007", str(bad))
        assert result.returncode == 1
        assert "SL007" in result.stdout
        assert "SL004" not in result.stdout

    def test_list_rules(self):
        result = self.run_cli("--list-rules")
        assert result.returncode == 0
        for rule in ALL_RULES:
            assert rule.id in result.stdout

    def test_missing_path_is_usage_error(self):
        result = self.run_cli("no/such/dir")
        assert result.returncode == 2


class TestHistoricalBugClasses:
    """Reverting a historical fix must re-fire the matching rule."""

    def test_banker_round_in_route_fires_sl004(self):
        source = (REPO_ROOT / "src/repro/core/control_proxy.py").read_text()
        reverted = source.replace(
            "n_forward = half_up(self._load_factor * n)",
            "n_forward = round(self._load_factor * n)",
        )
        assert reverted != source
        violations = lint_source(reverted, "src/repro/core/control_proxy.py")
        assert "SL004" in {v.rule_id for v in violations}

    def test_unguarded_network_link_fires_sl008(self):
        source = (REPO_ROOT / "src/repro/simulation/network.py").read_text()
        reverted = source.replace(
            '        require_finite("bandwidth_mbps", bandwidth_mbps, positive=True)\n',
            "",
        )
        assert reverted != source
        violations = lint_source(reverted, "src/repro/simulation/network.py")
        assert "SL008" in {v.rule_id for v in violations}

    def test_bare_valueerror_in_records_fires_sl007(self):
        source = (REPO_ROOT / "src/repro/query/records.py").read_text()
        reverted = source.replace(
            'raise ConfigurationError(f"duration_s must be positive',
            'raise ValueError(f"duration_s must be positive',
        )
        assert reverted != source
        violations = lint_source(reverted, "src/repro/query/records.py")
        assert "SL007" in {v.rule_id for v in violations}

    def test_env_knob_in_benchmark_fires_sl009(self):
        # The record-modes benchmark once read RECMODE_* from the environment
        # directly; knobs now arrive as --set overrides, with the env vars
        # accepted only through repro/scenarios/knobs.py as deprecated aliases.
        source = (REPO_ROOT / "benchmarks/bench_record_modes.py").read_text()
        reverted = source.replace(
            "deprecated_env_overrides(RECMODE_ALIASES)",
            '[f"run.min_speedup={os.environ.get(\'RECMODE_MIN_SPEEDUP\', 5.0)}"]',
        )
        assert reverted != source
        violations = lint_source(reverted, "benchmarks/bench_record_modes.py")
        assert "SL009" in {v.rule_id for v in violations}

    def test_deepcopy_in_take_partial_state_fires_sl010(self):
        # The window-boundary handoff once deep-copied the whole group dict;
        # reverting the shallow-copy fix must re-fire the hot-path ban.
        source = (REPO_ROOT / "src/repro/query/operators.py").read_text()
        reverted = source.replace(
            "return copy.copy(state) if state else None",
            "return copy.deepcopy(state) if state else None",
        )
        assert reverted != source
        violations = lint_source(reverted, "src/repro/query/operators.py")
        assert "SL010" in {v.rule_id for v in violations}

    def test_env_alias_layer_itself_is_exempt_from_sl009(self):
        path = REPO_ROOT / "src/repro/scenarios/knobs.py"
        source = path.read_text()
        assert "os.environ" in source  # the one sanctioned reader
        assert lint_source(source, str(path)) == []
