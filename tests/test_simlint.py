"""Self-tests for the simlint static checker (``tools/simlint``).

Fixture files under ``tests/simlint_fixtures/`` mark every expected violation
with a trailing ``# expect: RULE`` comment; the tests assert that simlint
reports exactly those (line, rule) pairs — no more, no fewer — and that the
known-good twin of each fixture is completely clean.  A separate test runs
the real CLI over ``src/`` and requires a clean exit, so the repository can
never drift out of compliance with its own rules.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

import pytest

from simlint import ALL_RULES, lint_source, rules_by_id
from simlint.core import Violation, derive_module_path

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE_DIR = Path(__file__).resolve().parent / "simlint_fixtures"
EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<rules>[A-Z0-9, ]+)")

BAD_FIXTURES = sorted(FIXTURE_DIR.glob("*_bad.py"))
GOOD_FIXTURES = sorted(FIXTURE_DIR.glob("*_good.py"))


def expected_pairs(source: str) -> set:
    """(line, rule) pairs declared by ``# expect:`` markers in a fixture."""
    pairs = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = EXPECT_RE.search(line)
        if not match:
            continue
        for rule_id in match.group("rules").split(","):
            pairs.add((lineno, rule_id.strip()))
    return pairs


def reported_pairs(violations) -> set:
    return {(v.line, v.rule_id) for v in violations}


class TestFixtures:
    def test_fixture_suite_is_present(self):
        assert len(BAD_FIXTURES) == 15
        assert len(GOOD_FIXTURES) == 15

    @pytest.mark.parametrize("path", BAD_FIXTURES, ids=lambda p: p.stem)
    def test_bad_fixture_reports_exact_lines(self, path):
        source = path.read_text()
        expected = expected_pairs(source)
        assert expected, f"{path.name} declares no expected violations"
        violations = lint_source(source, display_path=str(path))
        assert reported_pairs(violations) == expected

    @pytest.mark.parametrize("path", GOOD_FIXTURES, ids=lambda p: p.stem)
    def test_good_fixture_is_clean(self, path):
        source = path.read_text()
        assert expected_pairs(source) == set()
        assert lint_source(source, display_path=str(path)) == []

    def test_every_rule_has_a_firing_fixture(self):
        covered = set()
        for path in BAD_FIXTURES:
            covered |= {rule for _, rule in expected_pairs(path.read_text())}
        assert covered == {rule.id for rule in ALL_RULES}


class TestSuppression:
    BAD_LINE = "def f(n):\n    return round(n * 0.5)\n"

    def test_line_suppression(self):
        source = (
            "# simlint-fixture-path: repro/x.py\n"
            "def f(n):\n"
            "    return round(n * 0.5)  # simlint: disable=SL004\n"
        )
        assert lint_source(source, "x.py") == []

    def test_file_suppression(self):
        source = (
            "# simlint-fixture-path: repro/x.py\n"
            "# simlint: disable-file=SL004\n" + self.BAD_LINE
        )
        assert lint_source(source, "x.py") == []

    def test_suppressing_one_rule_keeps_others(self):
        source = (
            "# simlint-fixture-path: repro/x.py\n"
            "# simlint: disable-file=SL007\n"
            "def f(n):\n"
            "    if n < 0:\n"
            "        raise ValueError('n')\n"
            "    return round(n * 0.5)\n"
        )
        assert [v.rule_id for v in lint_source(source, "x.py")] == ["SL004"]

    def test_unsuppressed_fires(self):
        source = "# simlint-fixture-path: repro/x.py\n" + self.BAD_LINE
        violations = lint_source(source, "x.py")
        assert [v.rule_id for v in violations] == ["SL004"]
        assert violations[0].line == 3


class TestUnusedSuppression:
    """SL015: suppressions that absorb nothing are findings themselves."""

    def test_unused_line_suppression_fires(self):
        source = (
            "# simlint-fixture-path: repro/x.py\n"
            "def f(a, b):\n"
            "    return a + b  # simlint: disable=SL004\n"
        )
        violations = lint_source(source, "x.py")
        assert [(v.line, v.rule_id) for v in violations] == [(3, "SL015")]

    def test_unused_file_suppression_fires(self):
        source = (
            "# simlint-fixture-path: repro/x.py\n"
            "# simlint: disable-file=SL009\n"
            "def f(a, b):\n"
            "    return a + b\n"
        )
        violations = lint_source(source, "x.py")
        assert [(v.line, v.rule_id) for v in violations] == [(2, "SL015")]

    def test_unknown_rule_in_suppression_fires(self):
        source = (
            "# simlint-fixture-path: repro/x.py\n"
            "def f(a, b):\n"
            "    return a + b  # simlint: disable=SL999\n"
        )
        violations = lint_source(source, "x.py")
        assert [v.rule_id for v in violations] == ["SL015"]
        assert "SL999" in violations[0].message

    def test_used_suppression_is_silent(self):
        source = (
            "# simlint-fixture-path: repro/x.py\n"
            "def f(n):\n"
            "    return round(n * 0.5)  # simlint: disable=SL004\n"
        )
        assert lint_source(source, "x.py") == []

    def test_partial_select_does_not_flag_inactive_rules(self):
        # Under --select SL004 an unused SL007 suppression may still be
        # legitimate on a full run, so SL015 must leave it alone.
        source = (
            "# simlint-fixture-path: repro/x.py\n"
            "def f(n):\n"
            "    return n  # simlint: disable=SL007\n"
        )
        rules = rules_by_id(["SL004", "SL015"])
        assert lint_source(source, "x.py", rules=rules) == []

    def test_sl015_suppression_can_be_suppressed(self):
        source = (
            "# simlint-fixture-path: repro/x.py\n"
            "def f(a, b):\n"
            "    return a + b  # simlint: disable=SL004,SL015\n"
        )
        assert lint_source(source, "x.py") == []


class TestUnitLattice:
    """The SL012 unit algebra on which the flow rule rests."""

    def test_suffix_parsing(self):
        from simlint.flow import BYTES, COUNT, MBPS, SECONDS, unit_of_name

        assert unit_of_name("total_bytes") == BYTES
        assert unit_of_name("epoch_s") == SECONDS
        assert unit_of_name("bandwidth_mbps") == MBPS
        assert unit_of_name("n_records") == COUNT
        # The suffix wins over the counting prefix: num_bytes is bytes.
        assert unit_of_name("num_bytes") == BYTES
        assert unit_of_name("link_rate_bytes_per_s").time == -1
        assert unit_of_name("plain_name") is None

    def test_conversion_chain_mbps_to_bytes(self):
        # bandwidth_mbps * 1e6 / 8.0 * epoch_s is exactly bytes.
        source = (
            "# simlint-fixture-path: repro/simulation/metrics.py\n"
            "def cap(bandwidth_mbps, epoch_s):\n"
            "    capacity_bytes = bandwidth_mbps * 1e6 / 8.0 * epoch_s\n"
            "    return capacity_bytes\n"
        )
        assert lint_source(source, "m.py") == []

    def test_unconverted_rate_times_time_flags(self):
        source = (
            "# simlint-fixture-path: repro/simulation/metrics.py\n"
            "def cap(bandwidth_mbps, epoch_s):\n"
            "    capacity_bytes = bandwidth_mbps * epoch_s\n"
            "    return capacity_bytes\n"
        )
        violations = lint_source(source, "m.py")
        assert [(v.line, v.rule_id) for v in violations] == [(3, "SL012")]

    def test_cast_comment_overrides_inference(self):
        source = (
            "# simlint-fixture-path: repro/simulation/metrics.py\n"
            "def f(raw):\n"
            "    total_bytes = raw  # simlint: unit[bytes]\n"
            "    return total_bytes + 1.0\n"
        )
        assert lint_source(source, "m.py") == []

    def test_branch_join_keeps_agreeing_units(self):
        source = (
            "# simlint-fixture-path: repro/simulation/metrics.py\n"
            "def f(flag, sent_bytes, queued_bytes, epoch_s):\n"
            "    x = sent_bytes if flag else queued_bytes\n"
            "    return x + epoch_s\n"
        )
        violations = lint_source(source, "m.py")
        assert [(v.line, v.rule_id) for v in violations] == [(4, "SL012")]


class TestProjectIndex:
    def test_relative_import_resolution(self):
        import ast

        from simlint.project import ProjectIndex

        callee = ast.parse("def plan_transfer(budget_bytes):\n    return budget_bytes\n")
        caller = ast.parse(
            "from .network import plan_transfer\n"
            "def go(n_records):\n"
            "    return plan_transfer(n_records)\n"
        )
        index = ProjectIndex.build(
            {
                "repro/simulation/network.py": callee,
                "repro/simulation/multisource.py": caller,
            }
        )
        resolved = index.resolve_function(
            "repro/simulation/multisource.py", "plan_transfer"
        )
        assert resolved is not None
        assert resolved.module_path == "repro/simulation/network.py"
        assert resolved.param_names == ["budget_bytes"]

    def test_reachability_follows_bare_calls_not_methods(self):
        import ast

        from simlint.project import ProjectIndex

        tree = ast.parse(
            "def _worker_run():\n"
            "    helper()\n"
            "    obj.method()\n"
            "def helper():\n"
            "    pass\n"
            "def unrelated():\n"
            "    pass\n"
        )
        index = ProjectIndex.single_file("repro/simulation/parallel.py", tree)
        reachable = index.reachable_functions(
            "repro/simulation/parallel.py", {"_worker_run"}
        )
        assert reachable == {"_worker_run", "helper"}


class TestEngine:
    def test_module_path_derivation(self):
        assert (
            derive_module_path(Path("src/repro/simulation/engine.py"))
            == "repro/simulation/engine.py"
        )
        assert derive_module_path(Path("/tmp/scratch.py")) == "scratch.py"

    def test_render_format(self):
        violation = Violation("src/x.py", 3, 7, "SL004", "message text")
        assert violation.render() == "src/x.py:3:7 SL004 message text"

    def test_rules_by_id_selects_subset(self):
        rules = rules_by_id(["sl004", "SL007"])
        assert [rule.id for rule in rules] == ["SL004", "SL007"]

    def test_rules_by_id_rejects_unknown(self):
        with pytest.raises(KeyError):
            rules_by_id(["SL999"])

    def test_syntax_error_is_reported_not_raised(self):
        violations = lint_source("def f(:\n", "broken.py")
        assert [v.rule_id for v in violations] == ["SL000"]

    def test_rule_scoping_tests_are_exempt(self):
        # A file outside the repro package (e.g. a test) is never linted.
        assert lint_source("raise ValueError('x')\n", "tests/test_x.py") == []


class TestCli:
    def run_cli(self, *args, cwd=REPO_ROOT):
        env_path = str(REPO_ROOT / "tools")
        return subprocess.run(
            [sys.executable, "-m", "simlint", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
            env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
        )

    def test_repo_src_is_clean(self):
        result = self.run_cli("src/", "benchmarks/")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_violations_set_exit_code_and_format(self, tmp_path):
        bad = tmp_path / "repro" / "routing.py"
        bad.parent.mkdir()
        bad.write_text("def f(n):\n    return round(n * 0.5)\n")
        result = self.run_cli(str(bad))
        assert result.returncode == 1
        assert re.match(
            rf"{re.escape(str(bad))}:2:11 SL004 ", result.stdout.splitlines()[0]
        )

    def test_select_restricts_rules(self, tmp_path):
        bad = tmp_path / "repro" / "routing.py"
        bad.parent.mkdir()
        bad.write_text(
            "def f(n):\n"
            "    if n <= 0:\n"
            "        raise ValueError('n')\n"
            "    return round(n * 0.5)\n"
        )
        result = self.run_cli("--select", "SL007", str(bad))
        assert result.returncode == 1
        assert "SL007" in result.stdout
        assert "SL004" not in result.stdout

    def test_list_rules(self):
        result = self.run_cli("--list-rules")
        assert result.returncode == 0
        for rule in ALL_RULES:
            assert rule.id in result.stdout

    def test_missing_path_is_usage_error(self):
        result = self.run_cli("no/such/dir")
        assert result.returncode == 2

    def test_unknown_select_is_usage_error(self):
        result = self.run_cli("--select", "SL999", "src/")
        assert result.returncode == 2
        assert "SL999" in result.stderr

    def test_list_rules_validates_select_first(self):
        # Regression: --list-rules used to short-circuit before --select
        # validation, so a typo'd rule id exited 0 in CI.
        result = self.run_cli("--list-rules", "--select", "SL999")
        assert result.returncode == 2
        assert "SL999" in result.stderr

    def test_list_rules_respects_select(self):
        result = self.run_cli("--list-rules", "--select", "SL004,SL012")
        assert result.returncode == 0
        listed = [line.split()[0] for line in result.stdout.splitlines()]
        assert listed == ["SL004", "SL012"]

    def test_select_tolerates_trailing_comma(self):
        result = self.run_cli("--list-rules", "--select", "SL004,")
        assert result.returncode == 0
        assert result.stdout.startswith("SL004")

    def test_json_format(self, tmp_path):
        import json

        bad = tmp_path / "repro" / "routing.py"
        bad.parent.mkdir()
        bad.write_text("def f(n):\n    return round(n * 0.5)\n")
        result = self.run_cli("--format", "json", str(bad))
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload[0]["rule"] == "SL004"
        assert payload[0]["line"] == 2

    def test_sarif_format_validates(self, tmp_path):
        import json

        bad = tmp_path / "repro" / "routing.py"
        bad.parent.mkdir()
        bad.write_text("def f(n):\n    return round(n * 0.5)\n")
        result = self.run_cli("--format", "sarif", str(bad))
        assert result.returncode == 1
        sarif = json.loads(result.stdout)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "simlint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {r.id for r in ALL_RULES} <= rule_ids
        result_ids = {res["ruleId"] for res in run["results"]}
        assert result_ids == {"SL004"}
        region = run["results"][0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2

    def test_sarif_clean_run_has_empty_results(self, tmp_path):
        import json

        good = tmp_path / "repro" / "clean.py"
        good.parent.mkdir()
        good.write_text("def f(n):\n    return n\n")
        result = self.run_cli("--format", "sarif", str(good))
        assert result.returncode == 0
        assert json.loads(result.stdout)["runs"][0]["results"] == []

    def test_summary_prints_per_rule_counts(self, tmp_path):
        bad = tmp_path / "repro" / "routing.py"
        bad.parent.mkdir()
        bad.write_text("def f(n):\n    return round(n * 0.5)\n")
        result = self.run_cli("--summary", str(bad))
        assert "SL004: 1" in result.stderr

    def test_baseline_ratchet(self, tmp_path):
        bad = tmp_path / "repro" / "routing.py"
        bad.parent.mkdir()
        bad.write_text("def f(n):\n    return round(n * 0.5)\n")
        baseline = tmp_path / "baseline.json"
        # --update records the current counts; the same tree then passes.
        update = self.run_cli("--baseline", str(baseline), "--update", str(bad))
        assert update.returncode == 0
        check = self.run_cli("--baseline", str(baseline), str(bad))
        assert check.returncode == 0, check.stderr
        # A new finding exceeds the allowance and fails.
        bad.write_text(
            "def f(n):\n    return round(n * 0.5)\n"
            "def g(n):\n    return round(n * 0.25)\n"
        )
        regressed = self.run_cli("--baseline", str(baseline), str(bad))
        assert regressed.returncode == 1
        assert "baseline allows 1" in regressed.stderr

    def test_baseline_reports_tightening_opportunity(self, tmp_path):
        good = tmp_path / "repro" / "clean.py"
        good.parent.mkdir()
        good.write_text("def f(n):\n    return n\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"SL004": 3}\n')
        result = self.run_cli("--baseline", str(baseline), str(good))
        assert result.returncode == 0
        assert "tighten" in result.stderr

    def test_repo_baseline_is_current(self):
        result = self.run_cli(
            "src/",
            "benchmarks/",
            "--baseline",
            str(REPO_ROOT / "tools" / "simlint_baseline.json"),
        )
        assert result.returncode == 0, result.stdout + result.stderr


class TestHistoricalBugClasses:
    """Reverting a historical fix must re-fire the matching rule."""

    def test_banker_round_in_route_fires_sl004(self):
        source = (REPO_ROOT / "src/repro/core/control_proxy.py").read_text()
        reverted = source.replace(
            "n_forward = half_up(self._load_factor * n)",
            "n_forward = round(self._load_factor * n)",
        )
        assert reverted != source
        violations = lint_source(reverted, "src/repro/core/control_proxy.py")
        assert "SL004" in {v.rule_id for v in violations}

    def test_unguarded_network_link_fires_sl008(self):
        source = (REPO_ROOT / "src/repro/simulation/network.py").read_text()
        reverted = source.replace(
            '        require_finite("bandwidth_mbps", bandwidth_mbps, positive=True)\n',
            "",
        )
        assert reverted != source
        violations = lint_source(reverted, "src/repro/simulation/network.py")
        assert "SL008" in {v.rule_id for v in violations}

    def test_bare_valueerror_in_records_fires_sl007(self):
        source = (REPO_ROOT / "src/repro/query/records.py").read_text()
        reverted = source.replace(
            'raise ConfigurationError(f"duration_s must be positive',
            'raise ValueError(f"duration_s must be positive',
        )
        assert reverted != source
        violations = lint_source(reverted, "src/repro/query/records.py")
        assert "SL007" in {v.rule_id for v in violations}

    def test_env_knob_in_benchmark_fires_sl009(self):
        # The record-modes benchmark once read RECMODE_* from the environment
        # directly; knobs now arrive as --set overrides, with the env vars
        # accepted only through repro/scenarios/knobs.py as deprecated aliases.
        source = (REPO_ROOT / "benchmarks/bench_record_modes.py").read_text()
        reverted = source.replace(
            "deprecated_env_overrides(RECMODE_ALIASES)",
            '[f"run.min_speedup={os.environ.get(\'RECMODE_MIN_SPEEDUP\', 5.0)}"]',
        )
        assert reverted != source
        violations = lint_source(reverted, "benchmarks/bench_record_modes.py")
        assert "SL009" in {v.rule_id for v in violations}

    def test_deepcopy_in_take_partial_state_fires_sl010(self):
        # The window-boundary handoff once deep-copied the whole group dict;
        # reverting the shallow-copy fix must re-fire the hot-path ban.
        source = (REPO_ROOT / "src/repro/query/operators.py").read_text()
        reverted = source.replace(
            "return copy.copy(state) if state else None",
            "return copy.deepcopy(state) if state else None",
        )
        assert reverted != source
        violations = lint_source(reverted, "src/repro/query/operators.py")
        assert "SL010" in {v.rule_id for v in violations}

    def test_count_into_bytes_accumulator_fires_sl012(self):
        # PR 2 bug class: a record *count* folded into a byte accumulator
        # (the partial-bytes double count was exactly this conflation).
        source = (REPO_ROOT / "src/repro/simulation/multisource.py").read_text()
        reverted = source.replace(
            "completed_bytes += plan.completed_bytes",
            "completed_bytes += plan.completed_records",
        )
        assert reverted != source
        violations = lint_source(
            reverted, "src/repro/simulation/multisource.py"
        )
        assert "SL012" in {v.rule_id for v in violations}

    def test_view_without_own_fires_sl013(self):
        # PR 8 bug class: a zero-copy arena view stored into stage state
        # without own(), corrupted when the arena recycled its buffers.
        source = (REPO_ROOT / "src/repro/simulation/engine.py").read_text()
        reverted = source.replace(
            "stage.queue = arena.own(stage.queue)",
            "stage.queue = arena.view(state.arena_id)",
        )
        assert reverted != source
        violations = lint_source(reverted, "src/repro/simulation/engine.py")
        assert "SL013" in {v.rule_id for v in violations}

    def test_worker_side_shm_create_fires_sl014(self):
        # PR 9 contract: only the main process creates (and unlinks) shm
        # segments; a worker re-creating one leaks /dev/shm blocks on crash.
        source = (REPO_ROOT / "src/repro/simulation/parallel.py").read_text()
        reverted = source.replace(
            "shared_memory.SharedMemory(name=name)",
            "shared_memory.SharedMemory(name=name, create=True, size=1024)",
        )
        assert reverted != source
        violations = lint_source(reverted, "src/repro/simulation/parallel.py")
        assert "SL014" in {v.rule_id for v in violations}

    def test_env_alias_layer_itself_is_exempt_from_sl009(self):
        path = REPO_ROOT / "src/repro/scenarios/knobs.py"
        source = path.read_text()
        assert "os.environ" in source  # the one sanctioned reader
        assert lint_source(source, str(path)) == []
