"""Unit/integration tests for the source and stream-processor pipelines."""

from __future__ import annotations

import pytest

from repro.config import ProxyThresholds
from repro.core.state import OperatorState
from repro.errors import SimulationError
from repro.query.builder import s2s_probe_query
from repro.query.records import PingmeshRecord
from repro.simulation.pipeline import (
    SourcePipeline,
    StreamProcessorPipeline,
)
from repro.workloads.pingmesh import PingmeshConfig, PingmeshWorkload, s2s_cost_model

RATE = 200  # records per epoch used throughout these tests


@pytest.fixture()
def workload():
    return PingmeshWorkload(PingmeshConfig(records_per_epoch=RATE, peers=RATE * 5, seed=3))


@pytest.fixture()
def cost_model():
    return s2s_cost_model(reference_records_per_second=RATE)


def build_source(cost_model, thresholds=None):
    operators = s2s_probe_query().logical_plan().physical_plan().source_operators()
    return SourcePipeline(
        operators,
        cost_model,
        thresholds=thresholds or ProxyThresholds(),
        window_length_s=10.0,
        epoch_duration_s=1.0,
    )


def build_sp(cost_model):
    operators = s2s_probe_query().logical_plan().physical_plan().stream_processor_operators()
    return StreamProcessorPipeline(operators, cost_model, window_length_s=10.0)


class TestSourcePipelineBasics:
    def test_needs_operators(self, cost_model):
        with pytest.raises(SimulationError):
            SourcePipeline([], cost_model)

    def test_load_factor_management(self, cost_model):
        pipeline = build_source(cost_model)
        assert pipeline.load_factors() == [0.0, 0.0, 0.0]
        pipeline.set_load_factors([1.0, 0.5, 0.2])
        assert pipeline.load_factors() == [1.0, 0.5, 0.2]
        with pytest.raises(SimulationError):
            pipeline.set_load_factors([1.0])

    def test_operator_names(self, cost_model):
        pipeline = build_source(cost_model)
        assert pipeline.operator_names() == ["window", "filter", "group_aggregate"]

    def test_negative_budget_rejected(self, cost_model, workload):
        pipeline = build_source(cost_model)
        with pytest.raises(SimulationError):
            pipeline.run_epoch(workload.records_for_epoch(0), -0.1)


class TestCongestionReliefConservation:
    """Regression tests for the relief-drain duplication/loss bug.

    The old code drained ``queue[floor:][:cap]`` but truncated the queue from
    the *tail*, so a partial overflow kept the drained records locally
    (processed twice) while destroying an equal number of tail records.
    """

    def seed_stage_queue(self, cost_model, prefill):
        """A pipeline whose filter stage starts with ``prefill`` queued records."""
        pipeline = build_source(cost_model)  # all load factors 0.0
        pipeline.stages[1].queue = list(prefill)
        return pipeline

    def test_partial_overflow_drains_exact_middle_slice(self, cost_model, workload):
        records = workload.records_for_epoch(0)
        prefill = records[:40]
        injected = workload.records_for_epoch(1)  # drained at stage 0 (factor 0)
        pipeline = self.seed_stage_queue(cost_model, prefill)

        # Zero budget: nothing is processed, so the queue can only change via
        # congestion relief.  floor = congestion_pending_records = 16 and
        # relief_cap = ceil(0.05 * 200) = 10 < pending - floor: partial overflow.
        result = pipeline.run_epoch(injected, cpu_budget_fraction=0.0)

        relief_batches = [recs for stage, recs in result.drained if stage == 1]
        assert len(relief_batches) == 1
        drained_ids = [id(r) for r in relief_batches[0]]
        kept_ids = [id(r) for r in pipeline.stages[1].queue]
        original_ids = [id(r) for r in prefill]

        # Exactly the middle slice [16:26] was drained; head and tail remain.
        assert drained_ids == original_ids[16:26]
        assert kept_ids == original_ids[:16] + original_ids[26:]
        # No record is both drained and kept, and none vanished.
        assert not set(drained_ids) & set(kept_ids)
        assert set(drained_ids) | set(kept_ids) == set(original_ids)

    def test_full_overflow_drains_to_queue_end(self, cost_model, workload):
        records = workload.records_for_epoch(0)
        prefill = records[:20]
        injected = workload.records_for_epoch(1)
        pipeline = self.seed_stage_queue(cost_model, prefill)

        # pending(20) - floor(16) = 4 <= relief_cap(10): overflow reaches the
        # queue end, so the whole tail beyond the floor drains.
        result = pipeline.run_epoch(injected, cpu_budget_fraction=0.0)

        relief_batches = [recs for stage, recs in result.drained if stage == 1]
        assert len(relief_batches) == 1
        original_ids = [id(r) for r in prefill]
        assert [id(r) for r in relief_batches[0]] == original_ids[16:]
        assert [id(r) for r in pipeline.stages[1].queue] == original_ids[:16]

    def test_injected_records_drain_once_at_first_stage(self, cost_model, workload):
        injected = workload.records_for_epoch(0)
        pipeline = self.seed_stage_queue(cost_model, [])
        result = pipeline.run_epoch(injected, cpu_budget_fraction=0.0)
        stage0 = [recs for stage, recs in result.drained if stage == 0]
        assert [id(r) for batch in stage0 for r in batch] == [id(r) for r in injected]

    def test_per_stage_conservation_under_sustained_congestion(
        self, cost_model, workload
    ):
        """Every forwarded record is processed, drained, rejected, or queued.

        Runs the full plan at a starving budget for several windows so relief
        fires repeatedly with both partial and full overflow; the per-stage
        ledger must balance exactly at every epoch boundary.
        """
        pipeline = build_source(cost_model)
        pipeline.set_load_factors([1.0, 1.0, 1.0])
        forwarded = [0] * pipeline.num_stages
        processed = [0] * pipeline.num_stages
        queue_drained = [0] * pipeline.num_stages
        rejected = [0] * pipeline.num_stages
        for epoch in range(25):
            result = pipeline.run_epoch(
                workload.records_for_epoch(epoch), cpu_budget_fraction=0.15
            )
            for stage in range(pipeline.num_stages):
                forwarded[stage] += result.forwarded_per_stage[stage]
                processed[stage] += result.processed_per_stage[stage]
                queue_drained[stage] += result.queue_drained_per_stage[stage]
                rejected[stage] += result.rejected_per_stage[stage]
            for stage in range(pipeline.num_stages):
                queued = len(pipeline.stages[stage].queue)
                assert forwarded[stage] == (
                    processed[stage]
                    + queue_drained[stage]
                    + rejected[stage]
                    + queued
                ), f"stage {stage} leaked records at epoch {epoch}"
        # The scenario actually exercised congestion relief.
        assert sum(queue_drained) > 0


class TestSourcePipelineExecution:
    def test_zero_load_factors_drain_everything(self, cost_model, workload):
        pipeline = build_source(cost_model)
        result = pipeline.run_epoch(workload.records_for_epoch(0), 1.0)
        assert result.records_in == RATE
        assert result.drained_records == RATE
        assert result.cpu_used_seconds == 0.0
        # All drained records are tagged for the first stage.
        assert all(stage == 0 for stage, _ in result.drained)

    def test_full_load_factors_process_everything_within_budget(self, cost_model, workload):
        pipeline = build_source(cost_model)
        pipeline.set_load_factors([1.0, 1.0, 1.0])
        result = pipeline.run_epoch(workload.records_for_epoch(0), 1.0)
        assert result.drained_records == 0
        assert result.backlog_records == 0
        assert 0.8 <= result.cpu_used_seconds / 1.0 <= 1.0

    def test_budget_exhaustion_creates_backlog_and_congestion(self, cost_model, workload):
        pipeline = build_source(cost_model, ProxyThresholds(congestion_pending_records=4))
        pipeline.set_load_factors([1.0, 1.0, 1.0])
        result = pipeline.run_epoch(workload.records_for_epoch(0), 0.4)
        states = [obs.state for obs in result.observations]
        assert OperatorState.CONGESTED in states
        # Relief keeps the retained backlog bounded; the overflow is drained.
        assert result.drained_records > 0

    def test_congestion_relief_can_be_disabled(self, cost_model, workload):
        pipeline = build_source(cost_model)
        pipeline.allow_congestion_relief = False
        pipeline.set_load_factors([1.0, 1.0, 1.0])
        result = pipeline.run_epoch(workload.records_for_epoch(0), 0.4)
        assert result.drained_records == 0
        assert result.backlog_records > 0

    def test_partial_load_factor_splits_work(self, cost_model, workload):
        pipeline = build_source(cost_model)
        pipeline.set_load_factors([1.0, 1.0, 0.5])
        result = pipeline.run_epoch(workload.records_for_epoch(0), 1.0)
        drained_at_gr = sum(
            len(records) for stage, records in result.drained if stage == 2
        )
        assert drained_at_gr > 0
        assert result.processed_per_stage[2] > 0

    def test_idle_budget_reported(self, cost_model, workload):
        pipeline = build_source(cost_model)
        pipeline.set_load_factors([1.0, 1.0, 0.1])
        result = pipeline.run_epoch(workload.records_for_epoch(0), 1.0)
        idle_states = [obs.state for obs in result.observations]
        assert OperatorState.IDLE in idle_states

    def test_window_flush_ships_partial_state(self, cost_model, workload):
        pipeline = build_source(cost_model)
        pipeline.set_load_factors([1.0, 1.0, 1.0])
        partials_seen = 0
        for epoch in range(10):
            result = pipeline.run_epoch(workload.records_for_epoch(epoch), 1.0)
            if epoch < 9:
                assert result.partial_state_bytes == 0.0
        assert result.partial_state_bytes > 0.0
        assert 2 in result.partial_states
        # Flushing cleared the operator's window state.
        assert pipeline.stages[2].operator.group_count() == 0

    def test_profile_epoch_returns_measurements(self, cost_model, workload):
        pipeline = build_source(cost_model)
        result = pipeline.run_epoch(workload.records_for_epoch(0), 1.0, profile=True)
        assert result.measured_costs is not None
        assert result.measured_relays is not None
        assert len(result.measured_costs) == 3
        assert result.measured_costs[1] == pytest.approx(
            cost_model.cost_per_record(pipeline.stages[1].operator)
        )
        assert 0.0 <= result.measured_relays[1] <= 1.0

    def test_network_bytes_accounting(self, cost_model, workload):
        pipeline = build_source(cost_model)
        result = pipeline.run_epoch(workload.records_for_epoch(0), 1.0)
        assert result.network_bytes == pytest.approx(
            result.drained_bytes + result.emitted_bytes + result.partial_state_bytes
        )
        assert result.drained_bytes > result.input_bytes  # drain header overhead

    def test_reset_clears_state(self, cost_model, workload):
        pipeline = build_source(cost_model)
        pipeline.set_load_factors([1.0, 1.0, 1.0])
        pipeline.run_epoch(workload.records_for_epoch(0), 0.3)
        pipeline.reset()
        assert all(not stage.queue for stage in pipeline.stages)
        assert pipeline.stages[2].operator.group_count() == 0


class TestStreamProcessorPipeline:
    def test_needs_operators(self, cost_model):
        with pytest.raises(SimulationError):
            StreamProcessorPipeline([], cost_model)

    def test_processes_drained_records_from_their_stage(self, cost_model, workload):
        sp = build_sp(cost_model)
        records = workload.records_for_epoch(0)
        result = sp.process_epoch(drained=[(0, records)], watermark=1.0)
        assert result.records_processed > 0
        assert result.cpu_used_seconds > 0

    def test_rejects_unknown_stage_index(self, cost_model, workload):
        sp = build_sp(cost_model)
        with pytest.raises(SimulationError):
            sp.process_epoch(drained=[(9, workload.records_for_epoch(0))])

    def test_window_close_emits_final_rows(self, cost_model, workload):
        sp = build_sp(cost_model)
        outputs = []
        for epoch in range(10):
            result = sp.process_epoch(
                drained=[(0, workload.records_for_epoch(epoch))], watermark=float(epoch)
            )
            outputs.extend(result.final_outputs)
        assert outputs, "the closing window must emit aggregate rows"
        assert all(hasattr(row, "group_key") for row in outputs)

    def test_merges_source_partial_state(self, cost_model, workload):
        records = workload.records_for_epoch(0)
        # Source processes everything and ships only its partial state.
        source = build_source(cost_model)
        source.set_load_factors([1.0, 1.0, 1.0])
        partials = {}
        for epoch in range(10):
            result = source.run_epoch(workload.records_for_epoch(epoch), 1.0)
        partials = result.partial_states

        sp = build_sp(cost_model)
        merged_rows = []
        for epoch in range(10):
            out = sp.process_epoch(
                drained=[], partial_states=partials if epoch == 9 else None
            )
            merged_rows.extend(out.final_outputs)
        assert merged_rows, "merged partial state must produce final rows"

    def test_reset(self, cost_model, workload):
        sp = build_sp(cost_model)
        sp.process_epoch(drained=[(0, workload.records_for_epoch(0))])
        sp.reset()
        result = sp.process_epoch(drained=[])
        assert result.records_processed == 0
