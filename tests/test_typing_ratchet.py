"""Tests for the strict-typing ratchet (``tools/typing_ratchet.py``).

The mypy-dependent test is gated with ``importorskip`` because mypy is a
CI-only dependency; the baseline-shape tests always run so the checked-in
contract cannot rot even in environments without mypy.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
RATCHET = REPO_ROOT / "tools" / "typing_ratchet.py"
BASELINE = REPO_ROOT / "tools" / "typing_baseline.json"


class TestBaselineContract:
    def test_baseline_is_valid_and_covers_the_accounting_core(self):
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        import typing_ratchet

        data = json.loads(BASELINE.read_text())
        assert set(data["modules"]) == set(typing_ratchet.MODULES)
        for module, allowance in data["modules"].items():
            assert (REPO_ROOT / module).is_file(), module
            assert isinstance(allowance, int) and allowance >= 0

    def test_core_modules_are_fully_annotated(self):
        """Every def in the ratcheted modules annotates params and return."""
        import ast

        data = json.loads(BASELINE.read_text())
        offenders = []
        for module in data["modules"]:
            tree = ast.parse((REPO_ROOT / module).read_text())
            for node in ast.walk(tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                args = node.args
                for arg in args.posonlyargs + args.args + args.kwonlyargs:
                    if arg.arg in ("self", "cls"):
                        continue
                    if arg.annotation is None:
                        offenders.append(f"{module}:{node.lineno} {node.name}({arg.arg})")
                for vararg in (args.vararg, args.kwarg):
                    if vararg is not None and vararg.annotation is None:
                        offenders.append(
                            f"{module}:{node.lineno} {node.name}(*{vararg.arg})"
                        )
                if node.returns is None and node.name != "__init__":
                    offenders.append(f"{module}:{node.lineno} {node.name} -> ?")
        assert offenders == []


class TestRatchetRun:
    def test_ratchet_passes_against_baseline(self):
        pytest.importorskip("mypy")
        result = subprocess.run(
            [sys.executable, str(RATCHET)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_ratchet_reports_missing_mypy_cleanly(self):
        result = subprocess.run(
            [sys.executable, str(RATCHET)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        # Either mypy is present (exit 0: ratchet holds) or absent (exit 2
        # with a clear message); anything else is a ratchet violation.
        assert result.returncode in (0, 2), result.stdout + result.stderr
        if result.returncode == 2:
            assert "mypy is not installed" in result.stderr
