"""Tests for the co-located multi-query executor (Figure 11 at cluster scale)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import AllSPStrategy, StaticLoadFactorStrategy
from repro.config import JarvisConfig
from repro.errors import SimulationError
from repro.analysis.experiments import make_setup, make_strategy
from repro.simulation.metrics import ClusterMetrics, MultiQueryMetrics, RunMetrics
from repro.simulation.multiquery import (
    CoLocatedBlockExecutor,
    QuerySpec,
    single_query,
)
from repro.simulation.multisource import (
    MultiSourceConfig,
    MultiSourceExecutor,
    SourceSpec,
    homogeneous_sources,
)
from repro.simulation.node import StreamProcessorNode
from repro.simulation.sharding import ShardedCoLocatedExecutor


@pytest.fixture(scope="module")
def setup():
    return make_setup("s2s_probe", records_per_epoch=120)


def all_sp_fleet(setup, num_sources, seed=10, prefix="source"):
    return homogeneous_sources(
        num_sources,
        workload_factory=lambda i: setup.workload_factory(seed + i),
        strategy_factory=lambda i: AllSPStrategy(),
        budget=1.0,
        name_prefix=prefix,
    )


class _SilentWorkload:
    """A registered source that never produces records (zero demand)."""

    def records_for_epoch(self, epoch):
        return []


def silent_fleet(num_sources, prefix="silent"):
    """Sources with no input at all: zero link and compute demand."""
    return [
        SourceSpec(
            name=f"{prefix}-{i}",
            workload=_SilentWorkload(),
            strategy=StaticLoadFactorStrategy(
                [1.0, 1.0, 1.0], name=f"{prefix}-{i}"
            ),
            budget=1.0,
        )
        for i in range(num_sources)
    ]


def make_query(setup, name, sources, share=None, weight=1.0):
    return QuerySpec(
        name=name,
        plan=setup.plan,
        cost_model=setup.cost_model,
        sources=sources,
        sp_compute_share=share,
        ingress_weight=weight,
        config=setup.config,
    )


class TestQuerySpecValidation:
    def test_rejects_bad_share_and_weight(self, setup):
        with pytest.raises(SimulationError):
            make_query(setup, "q", all_sp_fleet(setup, 1), share=0.0)
        with pytest.raises(SimulationError):
            make_query(setup, "q", all_sp_fleet(setup, 1), share=1.5)
        with pytest.raises(SimulationError):
            make_query(setup, "q", all_sp_fleet(setup, 1), weight=0.0)
        with pytest.raises(SimulationError):
            make_query(setup, "", all_sp_fleet(setup, 1))


class TestConstruction:
    def test_requires_queries(self):
        with pytest.raises(SimulationError):
            CoLocatedBlockExecutor([])

    def test_rejects_duplicate_query_names(self, setup):
        queries = [
            make_query(setup, "q", all_sp_fleet(setup, 1, seed=10)),
            make_query(setup, "q", all_sp_fleet(setup, 1, seed=20)),
        ]
        with pytest.raises(SimulationError, match="unique"):
            CoLocatedBlockExecutor(queries)

    def test_rejects_over_committed_compute(self, setup):
        queries = [
            make_query(setup, "a", all_sp_fleet(setup, 1, seed=10), share=0.7),
            make_query(setup, "b", all_sp_fleet(setup, 1, seed=20), share=0.7),
        ]
        with pytest.raises(SimulationError, match="at most 1"):
            CoLocatedBlockExecutor(queries)

    def test_rejects_unset_share_with_no_headroom(self, setup):
        queries = [
            make_query(setup, "a", all_sp_fleet(setup, 1, seed=10), share=1.0),
            make_query(setup, "b", all_sp_fleet(setup, 1, seed=20)),
        ]
        with pytest.raises(SimulationError, match="no sp_compute_share"):
            CoLocatedBlockExecutor(queries)

    def test_rejects_mismatched_epoch_durations(self, setup):
        from dataclasses import replace as dc_replace
        from repro.config import EpochConfig

        other_config = JarvisConfig(epoch=EpochConfig(duration_s=2.0))
        queries = [
            make_query(setup, "a", all_sp_fleet(setup, 1, seed=10)),
            dc_replace(
                make_query(setup, "b", all_sp_fleet(setup, 1, seed=20)),
                config=other_config,
            ),
        ]
        with pytest.raises(SimulationError, match="epoch duration"):
            CoLocatedBlockExecutor(queries)

    def test_unset_shares_split_the_remainder(self, setup):
        queries = [
            make_query(setup, "a", all_sp_fleet(setup, 1, seed=10), share=0.5),
            make_query(setup, "b", all_sp_fleet(setup, 1, seed=20)),
            make_query(setup, "c", all_sp_fleet(setup, 1, seed=30)),
        ]
        executor = CoLocatedBlockExecutor(queries)
        shares = executor.compute_shares()
        assert shares["a"] == pytest.approx(0.5)
        assert shares["b"] == pytest.approx(0.25)
        assert shares["c"] == pytest.approx(0.25)


class TestSingleQueryEquivalence:
    def test_single_query_matches_multisource_exactly(self, setup):
        """Acceptance: one co-located query with sp_compute_share=1.0 is
        bit-identical to a standalone MultiSourceExecutor run."""

        def specs():
            return homogeneous_sources(
                3,
                workload_factory=lambda i: setup.workload_factory(20 + i),
                strategy_factory=lambda i: make_strategy("Best-OP", setup, 0.5),
                budget=0.5,
            )

        sp = lambda: StreamProcessorNode(ingress_bandwidth_mbps=2.0)
        direct = MultiSourceExecutor(
            plan=setup.plan,
            cost_model=setup.cost_model,
            sources=specs(),
            cluster_config=MultiSourceConfig(
                config=setup.config, stream_processor=sp()
            ),
        ).run(15, warmup_epochs=4)
        colocated = CoLocatedBlockExecutor(
            [
                single_query(
                    "q0",
                    setup.plan,
                    setup.cost_model,
                    specs(),
                    config=setup.config,
                    sp_compute_share=1.0,
                )
            ],
            stream_processor=sp(),
        ).run(15, warmup_epochs=4)

        mine = colocated.per_query["q0"]
        assert mine.summary() == direct.summary()
        assert mine.source_names() == direct.source_names()
        for name in direct.source_names():
            for a, b in zip(
                mine.per_source[name].epochs, direct.per_source[name].epochs
            ):
                assert a == b
        for a, b in zip(mine.cluster_epochs, direct.cluster_epochs):
            assert a == b


class TestHierarchicalLinkArbitration:
    def build(self, setup, queries, ingress_mbps, sp_cores=64, **kwargs):
        return CoLocatedBlockExecutor(
            queries,
            stream_processor=StreamProcessorNode(
                cores=sp_cores, ingress_bandwidth_mbps=ingress_mbps
            ),
            **kwargs,
        )

    def test_saturated_queries_split_by_ingress_weight(self, setup):
        """Two permanently backlogged queries share the link 2:1."""
        queries = [
            make_query(
                setup, "heavy", all_sp_fleet(setup, 2, seed=10, prefix="h"),
                share=0.5, weight=2.0,
            ),
            make_query(
                setup, "light", all_sp_fleet(setup, 2, seed=20, prefix="l"),
                share=0.5, weight=1.0,
            ),
        ]
        # Far below the two fleets' combined demand: both stay saturated.
        executor = self.build(setup, queries, ingress_mbps=setup.input_rate_mbps)
        metrics = executor.run(16, warmup_epochs=4)
        sent = {
            name: sum(
                em.network_sent_bytes
                for em in cluster.measured_cluster_epochs()
            )
            for name, cluster in metrics.per_query.items()
        }
        assert sent["heavy"] == pytest.approx(2.0 * sent["light"], rel=0.05)

    def test_idle_query_share_is_work_conserved(self, setup):
        """A query with no link demand leaves its weighted share to its
        backlogged neighbour: the neighbour gets ~the whole link, not half."""
        queries = [
            make_query(
                setup, "busy", all_sp_fleet(setup, 2, seed=10, prefix="b"),
                share=0.5, weight=1.0,
            ),
            make_query(
                setup, "quiet", silent_fleet(2, prefix="q"),
                share=0.5, weight=1.0,
            ),
        ]
        ingress = setup.input_rate_mbps  # busy alone can saturate this
        executor = self.build(setup, queries, ingress_mbps=ingress)
        metrics = executor.run(16, warmup_epochs=4)
        busy_sent_mbps = metrics.per_query["busy"].network_sent_mbps()
        # A strict weighted half-share would cap busy at 0.5x the link;
        # work conservation lets it take what quiet leaves idle.
        assert busy_sent_mbps > 0.95 * ingress
        assert executor.verify_record_conservation() == []


class TestComputeSharing:
    def build(self, setup, redistribute):
        queries = [
            make_query(
                setup, "starved", all_sp_fleet(setup, 2, seed=10, prefix="s"),
                share=0.0001, weight=1.0,
            ),
            make_query(
                setup, "idle", silent_fleet(1, prefix="i"),
                share=0.9, weight=1.0,
            ),
        ]
        return CoLocatedBlockExecutor(
            queries,
            stream_processor=StreamProcessorNode(
                cores=64, ingress_bandwidth_mbps=1000.0
            ),
            redistribute_idle_compute=redistribute,
        )

    def test_idle_compute_redistribution_unblocks_starved_query(self, setup):
        """With redistribution the starved query's SP backlog drains using
        the idle neighbour's compute; without it the backlog persists."""
        strict = self.build(setup, redistribute=False)
        shared = self.build(setup, redistribute=True)
        for _ in range(10):
            strict.run_epoch()
            shared.run_epoch()
        assert strict.sp_backlog_records() > 0
        assert shared.sp_backlog_records() == 0
        assert strict.verify_record_conservation() == []
        assert shared.verify_record_conservation() == []


class TestRunReuseGuard:
    def test_run_twice_raises(self, setup):
        executor = CoLocatedBlockExecutor(
            [make_query(setup, "q", all_sp_fleet(setup, 1))]
        )
        executor.run(3, warmup_epochs=0)
        with pytest.raises(SimulationError, match="fresh executor"):
            executor.run(3, warmup_epochs=0)

    def test_run_after_run_epoch_raises(self, setup):
        executor = CoLocatedBlockExecutor(
            [make_query(setup, "q", all_sp_fleet(setup, 1))]
        )
        executor.run_epoch()
        with pytest.raises(SimulationError, match="fresh executor"):
            executor.run(3, warmup_epochs=0)


class TestColocatedConservation:
    @settings(max_examples=8, deadline=None)
    @given(
        num_queries=st.integers(min_value=1, max_value=3),
        sources_per_query=st.integers(min_value=1, max_value=3),
        ingress=st.floats(min_value=0.0005, max_value=5.0),
        budget=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_colocated_runs_conserve_records_per_query(
        self, setup, num_queries, sources_per_query, ingress, budget
    ):
        """Property: every query of a co-located run conserves records, for
        any query/source/link/budget combination — including link slivers
        that force mid-record exhaustion every epoch."""
        queries = []
        for q in range(num_queries):
            fleet = homogeneous_sources(
                sources_per_query,
                workload_factory=lambda i, q=q: setup.workload_factory(
                    100 * q + i
                ),
                strategy_factory=lambda i: AllSPStrategy(),
                budget=budget,
                name_prefix=f"q{q}-src",
            )
            queries.append(
                make_query(setup, f"q{q}", fleet, weight=float(q + 1))
            )
        executor = CoLocatedBlockExecutor(
            queries,
            stream_processor=StreamProcessorNode(ingress_bandwidth_mbps=ingress),
        )
        executor.run(6, warmup_epochs=0)
        assert executor.verify_record_conservation() == []


class TestShardedCoLocated:
    def queries(self, setup, sources_per_query=4):
        return [
            make_query(
                setup, "alpha",
                all_sp_fleet(setup, sources_per_query, seed=10, prefix="a"),
                share=0.6, weight=2.0,
            ),
            make_query(
                setup, "beta",
                all_sp_fleet(setup, sources_per_query, seed=40, prefix="b"),
                share=0.4, weight=1.0,
            ),
        ]

    def test_k1_matches_colocated_exactly(self, setup):
        sp = lambda: StreamProcessorNode(ingress_bandwidth_mbps=2.0)
        direct = CoLocatedBlockExecutor(
            self.queries(setup), stream_processor=sp()
        ).run(10, warmup_epochs=2)
        sharded = ShardedCoLocatedExecutor(
            self.queries(setup), num_blocks=1, stream_processor=sp()
        ).run(10, warmup_epochs=2)
        for name in direct.query_names():
            assert (
                sharded.per_query[name].summary()
                == direct.per_query[name].summary()
            )
            for a, b in zip(
                sharded.per_query[name].cluster_epochs,
                direct.per_query[name].cluster_epochs,
            ):
                assert a == b

    def test_partitions_each_query_across_blocks(self, setup):
        executor = ShardedCoLocatedExecutor(
            self.queries(setup),
            num_blocks=2,
            stream_processor=StreamProcessorNode(ingress_bandwidth_mbps=5.0),
        )
        assert executor.num_blocks == 2
        assert executor.blocks_of("alpha") == [0, 1]
        assert executor.blocks_of("beta") == [0, 1]
        assignment = executor.assignment()
        assert set(assignment) == {"alpha", "beta"}
        assert sorted(assignment["alpha"].values()) == [0, 0, 1, 1]
        metrics = executor.run(8, warmup_epochs=2)
        assert executor.verify_record_conservation() == []
        assert metrics.per_query["alpha"].num_sources == 4
        assert metrics.num_queries == 2

    def test_single_source_queries_spread_across_blocks(self, setup):
        """Regression: the placement runs once over the flattened fleet, so
        four one-source queries deal out round-robin across two blocks —
        per-query placement would restart at block 0 every time, leave block
        1 empty, and reject the configuration."""
        queries = [
            make_query(
                setup, f"q{i}", all_sp_fleet(setup, 1, seed=10 * (i + 1),
                                             prefix=f"q{i}-src"),
                share=0.25,
            )
            for i in range(4)
        ]
        executor = ShardedCoLocatedExecutor(
            queries,
            num_blocks=2,
            stream_processor=StreamProcessorNode(ingress_bandwidth_mbps=5.0),
        )
        assert [executor.blocks_of(f"q{i}") for i in range(4)] == [
            [0], [1], [0], [1]
        ]
        metrics = executor.run(6, warmup_epochs=0)
        assert executor.verify_record_conservation() == []
        assert metrics.num_queries == 4

    def test_query_with_fewer_sources_than_blocks(self, setup):
        """A query absent from a block simply is not hosted there."""
        queries = [
            make_query(
                setup, "wide", all_sp_fleet(setup, 4, seed=10, prefix="w"),
                share=0.5,
            ),
            make_query(
                setup, "narrow", all_sp_fleet(setup, 1, seed=40, prefix="n"),
                share=0.5,
            ),
        ]
        executor = ShardedCoLocatedExecutor(
            queries,
            num_blocks=2,
            stream_processor=StreamProcessorNode(ingress_bandwidth_mbps=5.0),
        )
        assert executor.blocks_of("narrow") == [0]
        metrics = executor.run(6, warmup_epochs=0)
        assert metrics.per_query["narrow"].num_sources == 1
        assert metrics.per_query["wide"].num_sources == 4

    def test_idle_blocks_step_and_reuse_rejected(self, setup):
        """Regression: a tiling wider than the fleet used to be a hard
        SimulationError; idle blocks must construct and step zero-byte
        epochs instead (they can host migrated sources later)."""
        queries = [make_query(setup, "tiny", all_sp_fleet(setup, 1))]
        wide = ShardedCoLocatedExecutor(queries, num_blocks=2)
        assert wide.num_blocks == 2
        metrics = wide.run(3, warmup_epochs=0)
        assert metrics.query_names() == ["tiny"]
        assert wide.verify_record_conservation() == []
        executor = ShardedCoLocatedExecutor(
            self.queries(setup),
            num_blocks=2,
            stream_processor=StreamProcessorNode(ingress_bandwidth_mbps=5.0),
        )
        executor.run_epoch()
        with pytest.raises(SimulationError, match="fresh executor"):
            executor.run(3)


class TestMultiQueryMetrics:
    def cluster(self, latency=1.0, epochs=3):
        from repro.simulation.metrics import ClusterEpochMetrics, EpochMetrics

        cluster = ClusterMetrics(epoch_duration_s=1.0)
        run = RunMetrics(epoch_duration_s=1.0)
        for epoch in range(epochs):
            run.record(
                EpochMetrics(
                    epoch=epoch,
                    input_bytes=1000.0,
                    goodput_bytes=800.0,
                    network_bytes_offered=100.0,
                    network_bytes_sent=100.0,
                    network_queue_bytes=0.0,
                    cpu_used_seconds=0.5,
                    cpu_budget_seconds=1.0,
                    sp_cpu_seconds=0.1,
                    source_backlog_records=0,
                    latency_s=latency,
                )
            )
            cluster.record_cluster_epoch(
                ClusterEpochMetrics(
                    epoch=epoch,
                    network_offered_bytes=200.0,
                    network_sent_bytes=150.0,
                    network_queued_bytes=50.0,
                    network_capacity_bytes=300.0,
                    sp_cpu_used_seconds=0.2,
                    sp_cpu_capacity_seconds=0.5,
                    sp_backlog_records=0,
                )
            )
        cluster.register_source("src", run)
        return cluster

    def test_aggregates_sum_queries(self):
        metrics = MultiQueryMetrics(epoch_duration_s=1.0)
        metrics.register_query("a", self.cluster(latency=1.0))
        metrics.register_query("b", self.cluster(latency=3.0))
        single = self.cluster().aggregate_throughput_mbps()
        assert metrics.num_queries == 2
        assert metrics.aggregate_throughput_mbps() == pytest.approx(2 * single)
        assert metrics.per_query_throughput_mbps()["a"] == pytest.approx(single)
        assert metrics.median_latency_s() == pytest.approx(2.0)
        assert metrics.max_latency_s() == pytest.approx(3.0)
        # 0.2s used of each query's 0.5s entitlement per epoch -> 40% of the
        # combined entitlement.
        assert metrics.sp_cpu_utilization() == pytest.approx(0.4)
        summary = metrics.summary()
        assert summary["num_queries"] == 2.0
        assert set(summary["per_query_throughput_mbps"]) == {"a", "b"}

    def test_duplicate_query_rejected(self):
        metrics = MultiQueryMetrics(epoch_duration_s=1.0)
        metrics.register_query("a", self.cluster())
        with pytest.raises(SimulationError):
            metrics.register_query("a", self.cluster())

    def test_merged_validations(self):
        with pytest.raises(SimulationError):
            MultiQueryMetrics.merged([])
        one = MultiQueryMetrics(epoch_duration_s=1.0)
        other = MultiQueryMetrics(epoch_duration_s=2.0)
        with pytest.raises(SimulationError):
            MultiQueryMetrics.merged([one, other])

    def test_merged_combines_blocks_per_query(self):
        block0 = MultiQueryMetrics(epoch_duration_s=1.0)
        cluster0 = self.cluster()
        block0.register_query("q", cluster0)
        block1 = MultiQueryMetrics(epoch_duration_s=1.0)
        block1_cluster = self.cluster()
        # Rename the source so the merge across blocks stays disjoint.
        block1_cluster.per_source["other"] = block1_cluster.per_source.pop("src")
        block1.register_query("q", block1_cluster)
        fleet = MultiQueryMetrics.merged([block0, block1])
        assert fleet.num_queries == 1
        assert fleet.per_query["q"].num_sources == 2
        assert fleet.aggregate_throughput_mbps() == pytest.approx(
            2 * cluster0.aggregate_throughput_mbps()
        )
