"""Unit tests for the multi-source cluster scaling model."""

from __future__ import annotations

import pytest

from repro.core.state import QueryState
from repro.errors import SimulationError
from repro.simulation.cluster import ClusterModel, OVERLOAD_LATENCY_S
from repro.simulation.metrics import EpochMetrics, RunMetrics
from repro.simulation.node import StreamProcessorNode


def per_source_metrics(input_mbps=1.0, drain_mbps=0.4, sp_seconds=0.2, latency=0.5):
    """Synthesize single-source run metrics with the given per-epoch rates."""
    metrics = RunMetrics(epoch_duration_s=1.0)
    input_bytes = input_mbps * 1e6 / 8.0
    drain_bytes = drain_mbps * 1e6 / 8.0
    for epoch in range(10):
        metrics.record(
            EpochMetrics(
                epoch=epoch,
                input_bytes=input_bytes,
                goodput_bytes=input_bytes,
                network_bytes_offered=drain_bytes,
                network_bytes_sent=drain_bytes,
                network_queue_bytes=0.0,
                cpu_used_seconds=0.5,
                cpu_budget_seconds=1.0,
                sp_cpu_seconds=sp_seconds,
                source_backlog_records=0,
                latency_s=latency,
                query_state=QueryState.STABLE,
            )
        )
    return metrics


class TestClusterScaling:
    def sp(self, capacity=10.0, cores=64):
        return StreamProcessorNode(ingress_bandwidth_mbps=capacity, cores=cores)

    def test_linear_scaling_below_capacity(self):
        cluster = ClusterModel(self.sp(capacity=100.0))
        per_source = per_source_metrics(input_mbps=1.0, drain_mbps=0.4)
        result = cluster.scale(per_source, 10)
        assert result.aggregate_throughput_mbps == pytest.approx(10.0, rel=0.01)
        assert result.expected_throughput_mbps == pytest.approx(10.0, rel=0.01)
        assert not result.saturated

    def test_network_knee_limits_throughput(self):
        cluster = ClusterModel(self.sp(capacity=4.0))
        per_source = per_source_metrics(input_mbps=1.0, drain_mbps=0.4)
        below = cluster.scale(per_source, 9)    # 3.6 Mbps offered < capacity
        above = cluster.scale(per_source, 40)   # 16 Mbps offered >> capacity
        assert not below.saturated
        assert above.saturated
        assert above.aggregate_throughput_mbps < above.expected_throughput_mbps
        # The locally-handled share still scales with N.
        assert above.aggregate_throughput_mbps > below.aggregate_throughput_mbps

    def test_sp_compute_knee(self):
        cluster = ClusterModel(self.sp(capacity=1e6, cores=4))
        per_source = per_source_metrics(sp_seconds=0.5)
        result = cluster.scale(per_source, 20)  # needs 10 cores, only 4 available
        assert result.sp_cpu_utilization > 1.0
        assert result.saturated

    def test_latency_grows_with_utilization(self):
        cluster = ClusterModel(self.sp(capacity=10.0))
        per_source = per_source_metrics(drain_mbps=0.4)
        low = cluster.scale(per_source, 5)
        high = cluster.scale(per_source, 24)
        assert high.median_latency_s > low.median_latency_s

    def test_overload_latency_capped_at_paper_ceiling(self):
        cluster = ClusterModel(self.sp(capacity=1.0))
        per_source = per_source_metrics(drain_mbps=0.9)
        result = cluster.scale(per_source, 50)
        assert result.max_latency_s == OVERLOAD_LATENCY_S

    def test_rejects_non_positive_sources(self):
        cluster = ClusterModel(self.sp())
        with pytest.raises(SimulationError):
            cluster.scale(per_source_metrics(), 0)

    def test_rejects_bad_epoch_duration(self):
        with pytest.raises(SimulationError):
            ClusterModel(self.sp(), epoch_duration_s=0.0)

    def test_max_supported_sources_reflects_drain_rate(self):
        cluster = ClusterModel(self.sp(capacity=8.0))
        light = per_source_metrics(drain_mbps=0.2)
        heavy = per_source_metrics(drain_mbps=0.8)
        assert cluster.max_supported_sources(light) > cluster.max_supported_sources(heavy)

    def test_max_supported_sources_close_to_capacity_ratio(self):
        cluster = ClusterModel(self.sp(capacity=8.0))
        per_source = per_source_metrics(drain_mbps=0.4)
        supported = cluster.max_supported_sources(per_source)
        assert supported == pytest.approx(20, abs=2)
