"""Unit tests for logical-plan optimisation and physical-plan offload rules."""

from __future__ import annotations

import pytest

from repro.errors import PlanningError
from repro.query.aggregates import AvgAggregate, ExactQuantileAggregate
from repro.query.builder import Stream, s2s_probe_query, t2t_probe_query, log_analytics_query
from repro.query.logical_plan import LogicalPlan
from repro.query.operators import (
    AggregateOperator,
    FilterOperator,
    GroupApplyOperator,
    GroupAggregateOperator,
    MapOperator,
    WindowOperator,
)
from repro.query.builder import Query
from repro.query.physical_plan import OffloadRules, PhysicalPlan


class TestLogicalPlan:
    def test_from_query_preserves_pipeline_order(self):
        plan = s2s_probe_query().logical_plan()
        assert plan.operator_names() == ["window", "filter", "group_aggregate"]
        assert len(plan) == 3

    def test_empty_plan_rejected(self):
        with pytest.raises(PlanningError):
            LogicalPlan("q", [])

    def test_group_apply_followed_by_aggregate_is_fused(self):
        ops = [
            WindowOperator("w", 10.0),
            GroupApplyOperator("g", lambda r: r.key()),
            AggregateOperator("r", [AvgAggregate("rtt")]),
        ]
        plan = LogicalPlan.from_query(Query("q", ops))
        assert len(plan) == 2
        assert isinstance(plan.operators[-1], GroupAggregateOperator)
        assert plan.operators[-1].name == "g+r"

    def test_duplicate_windows_are_deduplicated(self):
        ops = [WindowOperator("w", 10.0), WindowOperator("w2", 10.0), FilterOperator("f", lambda r: True)]
        plan = LogicalPlan.from_query(Query("q", ops))
        assert [op.kind for op in plan.operators] == ["window", "filter"]

    def test_different_windows_are_kept(self):
        ops = [WindowOperator("w", 10.0), WindowOperator("w2", 5.0)]
        plan = LogicalPlan.from_query(Query("q", ops))
        assert len(plan) == 2

    def test_predicate_pushdown_requires_opt_in(self):
        def predicate(record):
            return True

        ops = [
            WindowOperator("w", 10.0),
            MapOperator("m", lambda r: r),
            FilterOperator("f", predicate),
        ]
        plan = LogicalPlan.from_query(Query("q", ops))
        assert [op.kind for op in plan.operators] == ["window", "map", "filter"]

        predicate.pushdown_safe = True  # type: ignore[attr-defined]
        plan2 = LogicalPlan.from_query(Query("q", ops))
        assert [op.kind for op in plan2.operators] == ["window", "filter", "map"]

    def test_optimize_can_be_disabled(self):
        ops = [
            WindowOperator("w", 10.0),
            GroupApplyOperator("g", lambda r: r.key()),
            AggregateOperator("r", [AvgAggregate("rtt")]),
        ]
        plan = LogicalPlan.from_query(Query("q", ops), optimize=False)
        assert len(plan) == 3


class TestPhysicalPlan:
    def test_all_paper_queries_fully_offloadable(self):
        for query in (s2s_probe_query(), t2t_probe_query(table_size=50), log_analytics_query()):
            plan = query.logical_plan().physical_plan()
            assert plan.offloadable_count == len(plan)

    def test_window_length_propagates(self):
        plan = s2s_probe_query(window_s=30.0).logical_plan().physical_plan()
        assert plan.window_length_s == 30.0

    def test_r1_blocks_non_incremental_aggregates(self):
        ops = [
            WindowOperator("w", 10.0),
            FilterOperator("f", lambda r: True),
            AggregateOperator("q", [ExactQuantileAggregate("rtt")]),
        ]
        plan = LogicalPlan.from_query(Query("q", ops)).physical_plan()
        assert plan.offloadable_count == 2
        assert "R-1" in plan.stages[2].reason

    def test_r1_can_be_disabled(self):
        ops = [
            WindowOperator("w", 10.0),
            AggregateOperator("q", [ExactQuantileAggregate("rtt")]),
        ]
        rules = OffloadRules(r1_incremental_only=False)
        plan = PhysicalPlan.from_logical(LogicalPlan.from_query(Query("q", ops)), rules)
        assert plan.offloadable_count == 2

    def test_r2_blocks_operators_after_stateful_stage(self):
        ops = [
            WindowOperator("w", 10.0),
            GroupAggregateOperator("g+r", lambda r: r.key(), [AvgAggregate("rtt")]),
            MapOperator("post", lambda r: r),
        ]
        plan = LogicalPlan.from_query(Query("q", ops)).physical_plan()
        assert plan.offloadable_count == 2
        assert "R-2" in plan.stages[2].reason

    def test_everything_after_blocked_stage_stays_on_sp(self):
        ops = [
            WindowOperator("w", 10.0),
            AggregateOperator("q", [ExactQuantileAggregate("rtt")]),
            FilterOperator("f", lambda r: True),
        ]
        plan = LogicalPlan.from_query(Query("q", ops)).physical_plan()
        assert plan.offloadable_count == 1
        assert not plan.stages[2].offloadable

    def test_pinned_operators_stay_on_sp(self):
        rules = OffloadRules(pinned_to_sp=frozenset({"filter"}))
        plan = PhysicalPlan.from_logical(s2s_probe_query().logical_plan(), rules)
        assert plan.offloadable_count == 1

    def test_source_and_sp_operators_are_fresh_clones(self):
        plan = s2s_probe_query().logical_plan().physical_plan()
        source_ops = plan.source_operators()
        sp_ops = plan.stream_processor_operators()
        assert len(source_ops) == plan.offloadable_count
        assert len(sp_ops) == len(plan)
        assert all(a is not b for a, b in zip(source_ops, plan.operators))
        assert all(a is not b for a, b in zip(sp_ops, plan.operators))

    def test_describe_mentions_every_stage(self):
        plan = s2s_probe_query().logical_plan().physical_plan()
        description = plan.describe()
        for name in plan.operators:
            assert name.name in description

    def test_empty_physical_plan_rejected(self):
        with pytest.raises(PlanningError):
            PhysicalPlan("q", [], window_length_s=10.0)

    def test_remote_only_stages_complement_offloadable(self):
        ops = [
            WindowOperator("w", 10.0),
            AggregateOperator("q", [ExactQuantileAggregate("rtt")]),
        ]
        plan = LogicalPlan.from_query(Query("q", ops)).physical_plan()
        assert len(plan.offloadable_stages()) + len(plan.remote_only_stages()) == len(plan)
