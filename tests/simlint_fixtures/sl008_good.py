# simlint-fixture-path: repro/simulation/network.py
"""Known-good fixture: every float parameter of a target class routes
through the shared finiteness guard."""

from ..errors import require_finite


class NetworkLink:
    def __init__(self, bandwidth_mbps: float, epoch_duration_s: float = 1.0) -> None:
        require_finite("bandwidth_mbps", bandwidth_mbps, positive=True)
        require_finite("epoch_duration_s", epoch_duration_s, positive=True)
        self.bandwidth_mbps = bandwidth_mbps
        self.epoch_duration_s = epoch_duration_s


class SharedLink(NetworkLink):
    """Not a target class: untracked helpers never fire SL008."""

    def __init__(self, bandwidth_mbps: float) -> None:
        super().__init__(bandwidth_mbps)
