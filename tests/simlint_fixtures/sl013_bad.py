# simlint-fixture-path: repro/simulation/arena_usage.py
"""Known-bad fixture: zero-copy arena views escaping the epoch boundary
without own() (the PR 8 escape contract)."""


class StageState:
    def __init__(self):
        self.queue = None
        self.batches = []
        self.by_name = {}

    def stash_view(self, arena, arena_id):
        self.queue = arena.view(arena_id)  # expect: SL013

    def push_view(self, arena, arena_id):
        batch = arena.view(arena_id)
        self.batches.append(batch)  # expect: SL013

    def index_view(self, arena, arena_id, name):
        self.by_name[name] = arena.view(arena_id)  # expect: SL013


def leak_view(arena, arena_id):
    return arena.view(arena_id)  # expect: SL013


def leak_slice(arena, arena_id, n_rows):
    batch = arena.view(arena_id)
    head = batch[:n_rows]
    return head  # expect: SL013


def leak_tuple(arena, arena_id, name):
    batch = arena.view(arena_id)
    return (name, batch)  # expect: SL013
