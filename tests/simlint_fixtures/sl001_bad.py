# simlint-fixture-path: repro/simulation/executor.py
"""Known-bad fixture: accounting arithmetic leaking out of engine.py.

Each flagged line carries a trailing expect-marker comment; the test asserts
the exact (line, rule) pairs simlint reports.
"""


def finish_epoch(metrics, epoch_duration_s, backlog_s, states):
    snapshot = metrics.EpochMetrics(goodput_mbps=1.0)  # expect: SL001
    observation = EpochObservation(state="stable")  # expect: SL001
    query_state = classify_query_state(states)  # expect: SL001
    latency = 0.5 * epoch_duration_s + backlog_s  # expect: SL001
    return snapshot, observation, query_state, latency


def goodput_bytes(input_bytes, debits):  # expect: SL001
    return input_bytes - sum(debits)


def latency_s(epoch_duration_s):  # expect: SL001
    return epoch_duration_s
