# simlint-fixture-path: repro/simulation/parallel.py
"""Known-good fixture: process parallelism inside the controller module.

Only ``repro/simulation/parallel.py`` may spawn worker pools, fork, or
attach shared memory — its fork-snapshot and teardown protocol is the
reproduction's one correctness argument for process-level parallelism.
The identical imports below are violations anywhere else (see
``sl011_bad.py``); other modules go through
:class:`ParallelBlockController`.
"""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context, shared_memory


def step_blocks_in_processes(blocks, step_one):
    pool = ProcessPoolExecutor(mp_context=get_context("fork"))
    segment = shared_memory.SharedMemory(create=True, size=1 << 20)
    try:
        return list(pool.map(step_one, blocks))
    finally:
        segment.unlink()
        pool.shutdown()
