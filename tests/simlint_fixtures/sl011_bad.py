# simlint-fixture-path: repro/simulation/sharding.py
"""Known-bad fixture: ad-hoc process parallelism outside the controller."""

import multiprocessing  # expect: SL011
import multiprocessing.shared_memory  # expect: SL011
import concurrent.futures  # expect: SL011
import os
from multiprocessing import get_context, shared_memory  # expect: SL011
from concurrent import futures  # expect: SL011
from concurrent.futures import ProcessPoolExecutor  # expect: SL011


def step_blocks_in_processes(blocks):
    pool = ProcessPoolExecutor(mp_context=get_context("fork"))
    segment = shared_memory.SharedMemory(create=True, size=1 << 20)
    try:
        return list(pool.map(_step_one, blocks))
    finally:
        segment.unlink()
        pool.shutdown()


def _step_one(block):
    pid = os.fork()  # expect: SL011
    return block, pid
