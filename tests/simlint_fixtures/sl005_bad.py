# simlint-fixture-path: repro/simulation/checks.py
"""Known-bad fixture: exact equality against float expressions."""

import math


def compare(goodput_mbps):
    return goodput_mbps == 26.2  # expect: SL005


def check(used, capacity):
    if used != capacity / 3.0:  # expect: SL005
        return False
    return float(used) == capacity  # expect: SL005


def is_unbounded(rate):
    return rate == math.inf  # expect: SL005
