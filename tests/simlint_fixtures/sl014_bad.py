# simlint-fixture-path: repro/simulation/parallel.py
"""Known-bad fixture: worker-reachable code mutating main-owned state
(the PR 9 fork/shm ownership contract, violated)."""

from multiprocessing import shared_memory

_WORKER = None
_SEGMENTS = {}
_RESULTS = []


def _worker_adopt(name):
    global _SEGMENTS  # expect: SL014
    _SEGMENTS = {
        name: shared_memory.SharedMemory(name=name, create=True, size=1024)  # expect: SL014
    }
    return name


def _worker_collect(value):
    _RESULTS.append(value)  # expect: SL014
    return list(_RESULTS)


def _worker_cleanup(segment):
    _release(segment)
    return True


def _release(segment):
    segment.unlink()  # expect: SL014
