# simlint-fixture-path: repro/core/router.py
"""Known-good fixture: the half-up helper for counts; 2-arg round() is for
display formatting only and stays legal."""

from ..query.records import half_up


def route_count(load_factor, n):
    return half_up(load_factor * n)


def display(value):
    return round(value, 2)
