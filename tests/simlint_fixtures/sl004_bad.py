# simlint-fixture-path: repro/core/router.py
"""Known-bad fixture: banker's rounding on a record count (the PR 5
ControlProxy.route bug class)."""


def route_count(load_factor, n):
    return round(load_factor * n)  # expect: SL004


def scaled_records(records_per_epoch, factor):
    return max(1, int(round(records_per_epoch * factor)))  # expect: SL004
