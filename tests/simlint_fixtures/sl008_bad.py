# simlint-fixture-path: repro/simulation/network.py
"""Known-bad fixture: a target class with unguarded float parameters (the
non-finite-rate bug class from PRs 3 and 5)."""


class NetworkLink:
    def __init__(
        self,
        bandwidth_mbps: float,  # expect: SL008
        epoch_duration_s: float = 1.0,  # expect: SL008
    ) -> None:
        self.bandwidth_mbps = bandwidth_mbps
        self.epoch_duration_s = epoch_duration_s
