# simlint-fixture-path: repro/scenarios/knobs.py
"""Known-good fixture: env aliases live in the scenario config layer.

Only ``repro/scenarios/knobs.py`` may read the environment; every other
module takes its knobs from a scenario config (``configs/*.toml``) or a
``--set`` override list, so the same code below is a violation anywhere
else (see ``sl009_bad.py``).
"""

import os


def deprecated_aliases(aliases):
    overrides = []
    for env_var, override_path in aliases.items():
        value = os.environ.get(env_var)
        if value is not None:
            overrides.append(f"{override_path}={value}")
    return overrides
