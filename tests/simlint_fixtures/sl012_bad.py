# simlint-fixture-path: repro/simulation/metrics.py
"""Known-bad fixture: mixed-unit arithmetic the suffix convention forbids
(the PR 1-5 byte-accounting bug class, caught by flow analysis)."""


def mixed_add(total_bytes, epoch_s):
    return total_bytes + epoch_s  # expect: SL012


def double_count(completed_bytes, completed_records):
    completed_bytes += completed_records  # expect: SL012
    return completed_bytes


def compare_mixed(queued_bytes, deadline_s):
    return queued_bytes > deadline_s  # expect: SL012


def clamp_mixed(allocation_bytes, epoch_s):
    return min(allocation_bytes, epoch_s)  # expect: SL012


def scale_mismatch(buffer_mb, used_bytes):
    return buffer_mb - used_bytes  # expect: SL012


def unconverted_rate(bandwidth_mbps, epoch_s):
    sent_bytes = bandwidth_mbps * epoch_s  # expect: SL012
    return sent_bytes


def offer(offered_bytes):
    return offered_bytes


def keyword_confusion(n_records):
    return offer(offered_bytes=n_records)  # expect: SL012


def positional_confusion(n_records):
    return offer(n_records)  # expect: SL012


def wrong_return_unit(elapsed_s):
    def backlog_bytes(queue_s):
        return queue_s  # expect: SL012

    return backlog_bytes(elapsed_s)
