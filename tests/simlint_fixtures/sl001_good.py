# simlint-fixture-path: repro/simulation/engine.py
"""Known-good fixture: the same accounting arithmetic is legal in engine.py
(the single home), and reading metrics elsewhere never fires SL001."""


class EpochAccountant:
    @staticmethod
    def goodput_bytes(input_bytes, debits):
        return max(0.0, input_bytes - sum(debits))

    @staticmethod
    def latency_s(epoch_duration_s, backlog_seconds):
        return 0.5 * epoch_duration_s + backlog_seconds


def summarize(metrics_cls, states):
    snapshot = metrics_cls.EpochMetrics(goodput_mbps=1.0)
    return snapshot, classify_query_state(states)
