# simlint-fixture-path: repro/simulation/engine.py
"""Known-good fixture: the engine owns the counters; everyone else may read
them (reads, keyword arguments, and local names never fire SL002)."""


class EpochEngine:
    def account(self, result, n):
        self.records_injected += n
        result.forwarded_per_stage.append(n)


def report(result):
    forwarded_per_stage = list(result.forwarded_per_stage)
    return {
        "injected": result.records_injected,
        "forwarded": sum(forwarded_per_stage),
    }
