# simlint-fixture-path: repro/query/validation.py
"""Known-good fixture: project errors, re-raises, and non-builtin types."""

from ..errors import ConfigurationError, SimulationError


def check_duration(duration_s):
    if duration_s <= 0:
        raise ConfigurationError(
            f"duration_s must be positive, got {duration_s!r}"
        )


def step(state):
    if state is None:
        raise SimulationError("stepped before initialization")
    try:
        return state.advance()
    except KeyError:
        raise
