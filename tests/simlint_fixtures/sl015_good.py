# simlint-fixture-path: repro/simulation/suppressions_ok.py
"""Known-good fixture: every suppression absorbs a real violation."""


def rounded_count(value):
    return round(value)  # simlint: disable=SL004


def half(values):
    return round(sum(values) / 2)  # simlint: disable=all
