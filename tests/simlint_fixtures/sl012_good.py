# simlint-fixture-path: repro/simulation/metrics.py
"""Known-good fixture: unit-correct accounting arithmetic, explicit
conversions, and the `# simlint: unit[...]` cast escape hatch."""


def to_bytes(buffer_mb):
    return buffer_mb * 1e6


def goodput_mbps(total_bytes, elapsed_s):
    return total_bytes * 8.0 / 1e6 / elapsed_s


def capacity_bytes(link_rate_bytes_per_s, epoch_s):
    return link_rate_bytes_per_s * epoch_s


def drain(queue_bytes, drained_bytes):
    queue_bytes -= drained_bytes
    remaining_bytes = max(0.0, queue_bytes)
    return remaining_bytes


def per_source_split(total_bytes, n_sources):
    per_source_bytes = total_bytes / n_sources
    return per_source_bytes


def cast_escape(raw_payload):
    payload_bytes = raw_payload  # simlint: unit[bytes]
    total_bytes = payload_bytes + 128.0
    return total_bytes


def latency(backlog_bytes, link_rate_bytes_per_s):
    delay_s = backlog_bytes / link_rate_bytes_per_s
    return delay_s


def count_records(batches):
    total_records = 0
    for batch in batches:
        total_records += len(batch)
    return total_records
