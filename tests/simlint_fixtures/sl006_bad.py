# simlint-fixture-path: repro/query/custom_ops.py
"""Known-bad fixture: an operator with an object-mode process() and neither a
columnar process_batch() nor the explicit opt-out marker."""


class ScrubOperator(Operator):  # expect: SL006
    kind = "scrub"

    def process(self, records):
        return [r for r in records if r is not None]


class Probe(Operator):  # expect: SL006
    kind = "probe"

    def process(self, records):
        return list(records)
