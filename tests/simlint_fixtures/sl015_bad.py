# simlint-fixture-path: repro/simulation/suppressions.py
"""Known-bad fixture: suppression comments that suppress nothing (and one
naming a rule that does not exist)."""

# simlint: disable-file=SL009  # expect: SL015


def add(a, b):
    return a + b  # simlint: disable=SL004  # expect: SL015


def sub(a, b):
    return a - b  # simlint: disable=SL999  # expect: SL015
