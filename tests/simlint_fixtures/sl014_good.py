# simlint-fixture-path: repro/simulation/parallel.py
"""Known-good fixture: workers own only their sanctioned globals, attach
(never create) segments, and leave unlink to the main process."""

from multiprocessing import shared_memory

_WORKER = None
_FORK_CONTEXT = None


def _attach_segment(name):
    return shared_memory.SharedMemory(name=name)


def _worker_adopt(names):
    global _WORKER
    _WORKER = [_attach_segment(name) for name in names]
    return [segment.name for segment in _WORKER]


def _worker_close():
    global _WORKER
    for segment in _WORKER or []:
        segment.close()
    _WORKER = None
    return True


def main_create(n_segments):
    return [
        shared_memory.SharedMemory(create=True, size=1024)
        for _ in range(n_segments)
    ]


def main_close(segments):
    for segment in segments:
        segment.close()
        segment.unlink()
