# simlint-fixture-path: repro/workloads/synthetic.py
"""Known-good fixture: seeded RNG instances and the monotonic clock."""

import random
import time

import numpy as np


def jitter(seed):
    rng = random.Random(seed)
    generator = np.random.default_rng(seed)
    started = time.perf_counter()
    return rng.uniform(0.0, 1.0), generator.random(), started
