# simlint-fixture-path: repro/simulation/checks.py
"""Known-good fixture: tolerance-based float comparisons; integer equality
and float ordering comparisons stay legal."""

import math


def compare(goodput_mbps):
    return math.isclose(goodput_mbps, 26.2, rel_tol=1e-9)


def check(used, capacity, count):
    if used <= capacity / 3.0:
        return True
    return count == 0
