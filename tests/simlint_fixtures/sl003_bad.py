# simlint-fixture-path: repro/workloads/synthetic.py
"""Known-bad fixture: nondeterministic RNG and wall-clock use."""

import random
import time

import numpy as np
from datetime import datetime


def jitter():
    rng = random.Random()  # expect: SL003
    noise = random.uniform(0.0, 1.0)  # expect: SL003
    draw = np.random.random()  # expect: SL003
    unseeded = np.random.default_rng()  # expect: SL003
    now = time.time()  # expect: SL003
    stamp = datetime.now()  # expect: SL003
    return rng, noise, draw, unseeded, now, stamp
