# simlint-fixture-path: repro/simulation/pipeline.py
"""Known-bad fixture: deep-copying shipped state on the epoch hot path (the
window-boundary cost class SL010 guards against)."""

import copy
from copy import deepcopy


def take_partial_state(groups):
    return copy.deepcopy(groups)  # expect: SL010


def snapshot_queue(queue):
    return deepcopy(queue)  # expect: SL010
