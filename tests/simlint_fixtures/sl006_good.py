# simlint-fixture-path: repro/query/custom_ops.py
"""Known-good fixture: operators either implement the columnar path or opt
out explicitly (and non-operator classes are never checked)."""


class ScrubOperator(Operator):
    kind = "scrub"

    def process(self, records):
        return [r for r in records if r is not None]

    def process_batch(self, batch):
        return batch.compress([r is not None for r in batch])


class OpaqueOperator(Operator):
    kind = "opaque"
    process_batch_fallback = True

    def process(self, records):
        return list(records)


class Helper:
    def process(self, records):
        return records
