# simlint-fixture-path: repro/query/validation.py
"""Known-bad fixture: bare builtin exceptions instead of the project
hierarchy."""


def check_duration(duration_s):
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s!r}")  # expect: SL007


def step(state):
    if state is None:
        raise RuntimeError("stepped before initialization")  # expect: SL007
    raise Exception("unreachable")  # expect: SL007
