# simlint-fixture-path: repro/analysis/experiments.py
"""Known-bad fixture: environment knobs read outside the config layer."""

import os
from os import environ, getenv


def scaling_knobs():
    sources = os.getenv("FIG10_SOURCES", "")  # expect: SL009
    epochs = int(os.environ.get("FIG10_EPOCHS", "35"))  # expect: SL009
    migrate = "FIG10_MIGRATION" in os.environ  # expect: SL009
    rate = environ["RECMODE_RATE"]  # expect: SL009
    speedup = getenv("RECMODE_MIN_SPEEDUP")  # expect: SL009
    return sources, epochs, migrate, rate, speedup
