# simlint-fixture-path: repro/simulation/pipeline.py
"""Known-good twin of sl010_bad: shallow handoff of shipped state.

``flush`` implementations replace (never mutate) the accumulator they just
shipped, so ownership transfer or a shallow copy is always sufficient — and
a deepcopy elsewhere (e.g. analysis code outside the hot path) is not this
rule's business.
"""

import copy


def take_partial_state(groups):
    # Shallow: the dict is detached, the states inside are handed off.
    return copy.copy(groups)


def snapshot_queue(queue):
    return list(queue)
