# simlint-fixture-path: repro/core/runtime.py
"""Known-bad fixture: conservation counters mutated outside the engine."""


class RogueAccounting:
    def absorb(self, result, n):
        self.records_injected += n  # expect: SL002
        self.records_rejected = 0  # expect: SL002
        result.forwarded_per_stage.append(n)  # expect: SL002
        result.processed_per_stage[0] = n  # expect: SL002
        result.sp_processed_records += n  # expect: SL002
