# simlint-fixture-path: repro/simulation/arena_usage.py
"""Known-good fixture: arena views used within the epoch or materialized
through own() before escaping (the PR 8 contract, followed)."""


class StageState:
    def __init__(self):
        self.queue = None
        self.batches = []

    def adopt_view(self, arena, arena_id):
        self.queue = arena.own(arena.view(arena_id))

    def adopt_slice(self, arena, arena_id, n_rows):
        batch = arena.view(arena_id)
        self.batches.append(arena.own(batch[:n_rows]))


def fill(arena, states):
    # Same-epoch handoff through a local container is the engine's
    # sanctioned pattern: the dict dies with the epoch.
    fetched = {}
    for state in states:
        fetched[state.name] = arena.view(state.arena_id)
    return fetched


def drain_now(arena, arena_id, sink):
    batch = arena.view(arena_id)
    for record in batch:
        sink(record)
    return len(batch)
