"""Integration tests for the experiment harness (small-scale versions)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    adaptation_overhead,
    convergence_run,
    make_setup,
    max_supported_sources,
    multi_query_sweep,
    operator_count_convergence,
    partitioning_mode_comparison,
    reset_jarvis_plan,
    scaling_sweep,
    swap_join_table,
    synopsis_comparison,
    throughput_sweep,
)
from repro.analysis.reporting import (
    format_table,
    series_table,
    speedup_table,
    summarize_sweep,
)
from repro.errors import ConfigurationError
from repro.query.records import IpToTorTable
from repro.simulation.node import BudgetSchedule

RPE = 200  # records per epoch for fast integration runs


class TestSetups:
    def test_make_setup_rejects_unknown_query(self):
        with pytest.raises(ConfigurationError):
            make_setup("nope")

    def test_setup_relays_measured(self, s2s_setup):
        assert len(s2s_setup.byte_relays) == 3
        assert s2s_setup.byte_relays[1] == pytest.approx(0.86, abs=0.05)
        assert s2s_setup.count_relays[1] == pytest.approx(0.86, abs=0.05)
        assert s2s_setup.byte_relays[2] < 0.6

    def test_setup_bandwidth_ratio_matches_paper(self, s2s_setup):
        assert s2s_setup.bandwidth_mbps / s2s_setup.input_rate_mbps == pytest.approx(
            20.48 / 26.2, rel=0.01
        )

    def test_rate_scale_reduces_records(self):
        full = make_setup("s2s_probe", records_per_epoch=RPE, rate_scale=1.0)
        half = make_setup("s2s_probe", records_per_epoch=RPE, rate_scale=0.5)
        assert half.records_per_epoch == RPE // 2
        assert half.input_rate_mbps == pytest.approx(full.input_rate_mbps / 2, rel=0.05)


class TestFigure3:
    def test_data_level_reduces_network_over_operator_level(self, s2s_setup):
        results = partitioning_mode_comparison(
            s2s_setup, budget=0.8, num_epochs=30, warmup_epochs=12
        )
        op_level = results["operator-level"]
        data_level = results["data-level"]
        # Paper: 22.5 Mbps vs 9.4 Mbps (a 2.4x reduction) at an 80% budget.
        assert op_level["network_fraction_of_input"] > 0.7
        assert data_level["network_fraction_of_input"] < 0.55
        assert op_level["network_mbps"] / data_level["network_mbps"] > 1.7
        # Data-level partitioning uses the budget; operator-level leaves it idle.
        assert data_level["cpu_utilization"] > 0.8
        assert op_level["cpu_utilization"] < 0.3


class TestFigure7:
    def test_throughput_sweep_shape(self, s2s_setup):
        sweep = throughput_sweep(
            setup=s2s_setup,
            budgets=(0.4, 0.8),
            strategies=("All-Src", "Best-OP", "Jarvis"),
            num_epochs=25,
            warmup_epochs=10,
        )
        assert set(sweep) == {"All-Src", "Best-OP", "Jarvis"}
        series = summarize_sweep(sweep)
        # Jarvis dominates All-Src under constrained budgets and is at least
        # as good as Best-OP everywhere.
        for budget in (0.4, 0.8):
            assert series["Jarvis"][budget] >= series["All-Src"][budget]
            assert series["Jarvis"][budget] >= 0.95 * series["Best-OP"][budget]
        assert series["Jarvis"][0.4] > 1.5 * series["All-Src"][0.4]


class TestFigure8:
    def test_convergence_run_s2s(self, s2s_setup):
        results = convergence_run(
            setup=s2s_setup,
            strategies=("Jarvis", "w/o LP-init"),
            schedule=BudgetSchedule([(0, 0.10), (3, 0.90)]),
            num_epochs=26,
        )
        jarvis = results["Jarvis"]["convergence_epochs"][3]
        no_lp = results["w/o LP-init"]["convergence_epochs"][3]
        assert jarvis is not None and no_lp is not None
        # LP initialisation converges faster than the pure model-agnostic search.
        assert jarvis <= no_lp
        # Three detection epochs + profile + a handful of fine-tuning epochs.
        assert jarvis <= 13

    def test_event_callbacks_exist(self, t2t_setup):
        table = IpToTorTable.dense(5000)
        swap = swap_join_table(table)
        reset = reset_jarvis_plan()
        assert callable(swap) and callable(reset)


class TestFigure9:
    def test_synopsis_comparison_structure(self):
        results = synopsis_comparison(
            sampling_rates=(0.2, 0.8),
            records_per_epoch=RPE,
            num_windows=1,
            jarvis_budgets=(1.0,),
        )
        assert set(results["sampling"]) == {0.2, 0.8}
        low, high = results["sampling"][0.2], results["sampling"][0.8]
        assert low["network_mbps"] < high["network_mbps"]
        assert low["fraction_within_1ms"] <= high["fraction_within_1ms"]
        assert results["jarvis"][1.0]["accuracy_loss"] == 0.0


class TestFigure10:
    def test_scaling_sweep_jarvis_supports_more_sources(self):
        supported = max_supported_sources(
            rate_scale=0.5, cpu_budget=0.30, records_per_epoch=400, limit=200
        )
        assert supported["Jarvis"] > supported["Best-OP"]
        # The paper reports ~75% more sources; allow a generous band.
        ratio = supported["Jarvis"] / max(1, supported["Best-OP"])
        assert ratio > 1.4

    def test_scaling_sweep_results_structure(self):
        results = scaling_sweep(
            rate_scale=1.0,
            cpu_budget=0.55,
            node_counts=(1, 16, 64),
            strategies=("Jarvis",),
            records_per_epoch=RPE,
            num_epochs=25,
            warmup_epochs=10,
        )
        series = results["Jarvis"]
        assert [r.num_sources for r in series] == [1, 16, 64]
        assert series[0].aggregate_throughput_mbps <= series[-1].expected_throughput_mbps
        # Throughput grows with the node count even past saturation.
        assert series[2].aggregate_throughput_mbps > series[0].aggregate_throughput_mbps


class TestFigure11:
    def test_multi_query_saturates_with_core_count(self):
        one_core = multi_query_sweep(
            rate_scale=1.0, cores=1, query_counts=(1, 2, 4),
            records_per_epoch=RPE, num_epochs=25, warmup_epochs=10,
        )
        two_cores = multi_query_sweep(
            rate_scale=1.0, cores=2, query_counts=(1, 2, 4),
            records_per_epoch=RPE, num_epochs=25, warmup_epochs=10,
        )
        # Aggregate throughput is monotone in the query count until saturation,
        # and two cores support strictly more aggregate throughput at 4 queries.
        assert one_core[1]["aggregate_throughput_mbps"] >= one_core[0]["aggregate_throughput_mbps"]
        assert two_cores[2]["aggregate_throughput_mbps"] > one_core[2]["aggregate_throughput_mbps"]


class TestSectionVIC:
    def test_finetune_convergence_grows_with_operator_count(self):
        results = operator_count_convergence(operator_counts=(2, 4), samples_per_count=30)
        assert results[4]["max_iterations"] >= results[2]["max_iterations"]
        assert results[4]["max_iterations"] >= 8

    def test_adaptation_overhead_below_one_percent(self):
        overhead = adaptation_overhead(num_epochs=20, records_per_epoch=RPE)
        assert overhead["core_fraction"] < 0.01


class TestReporting:
    def test_format_table_alignment_and_validation(self):
        table = format_table(["a", "b"], [[1, 2.5], ["x", 3.14159]])
        assert "a" in table and "x" in table
        with pytest.raises(ConfigurationError):
            format_table([], [])
        with pytest.raises(ConfigurationError):
            format_table(["a"], [[1, 2]])

    def test_series_table(self):
        table = series_table({"Jarvis": {0.2: 1.0, 0.4: 2.0}, "Best-OP": {0.2: 0.5}})
        assert "Jarvis" in table and "Best-OP" in table
        with pytest.raises(ConfigurationError):
            series_table({})

    def test_speedup_table_requires_reference(self):
        sweep = {"Jarvis": {0.2: {"throughput_mbps": 2.0}}}
        with pytest.raises(ConfigurationError):
            speedup_table(sweep, reference="Best-OP")
        assert "Jarvis" in speedup_table(sweep, reference="Jarvis")
