"""Shared fixtures for the test suite.

Fixtures build *small* versions of the paper's queries/workloads so the full
suite stays fast; the benchmarks exercise the full-size configurations.
"""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests without installing the package (e.g. straight from
# a source checkout) by putting ``src`` on the path.  ``tools`` carries the
# repo's static-analysis tooling (simlint) exercised by its own tests.
_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
_TOOLS = os.path.join(_ROOT, "tools")
for _path in (_SRC, _TOOLS):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.analysis.experiments import QuerySetup, make_setup  # noqa: E402
from repro.config import JarvisConfig  # noqa: E402
from repro.query.builder import s2s_probe_query  # noqa: E402
from repro.workloads.pingmesh import PingmeshConfig, PingmeshWorkload, s2s_cost_model  # noqa: E402


SMALL_RECORDS_PER_EPOCH = 200


@pytest.fixture(scope="session")
def s2s_setup() -> QuerySetup:
    """A small S2SProbe setup shared by integration-style tests."""
    return make_setup("s2s_probe", records_per_epoch=SMALL_RECORDS_PER_EPOCH)


@pytest.fixture(scope="session")
def t2t_setup() -> QuerySetup:
    """A small T2TProbe setup shared by integration-style tests."""
    return make_setup("t2t_probe", records_per_epoch=SMALL_RECORDS_PER_EPOCH)


@pytest.fixture(scope="session")
def log_setup() -> QuerySetup:
    """A small LogAnalytics setup shared by integration-style tests."""
    return make_setup("log_analytics", records_per_epoch=SMALL_RECORDS_PER_EPOCH)


@pytest.fixture()
def config() -> JarvisConfig:
    """A default configuration instance (fresh per test)."""
    return JarvisConfig()


@pytest.fixture()
def small_pingmesh() -> PingmeshWorkload:
    """A deterministic, small Pingmesh workload."""
    return PingmeshWorkload(PingmeshConfig(records_per_epoch=100, peers=500, seed=7))


@pytest.fixture()
def s2s_query():
    """A fresh S2SProbe query object."""
    return s2s_probe_query()


@pytest.fixture()
def s2s_costs():
    """Cost model calibrated for the small S2SProbe workload."""
    return s2s_cost_model(reference_records_per_second=100)
