"""Unit tests for operator-level partitioning (Eq. 1 utilities)."""

from __future__ import annotations

import pytest

from repro.core.partitioner import (
    OperatorLevelPartitioner,
    boundary_to_load_factors,
    operator_level_boundary,
    prefix_cpu_fractions,
)
from repro.core.profiler import OperatorProfile, PipelineProfile
from repro.errors import PartitioningError


def profile(costs, relays, budget, records=1000.0):
    ops = [
        OperatorProfile(f"op{i}", c, r, 1000, True)
        for i, (c, r) in enumerate(zip(costs, relays))
    ]
    return PipelineProfile(ops, compute_budget=budget, records_per_epoch=records)


def s2s_profile(budget):
    return profile([0.0, 0.13 / 1000, 0.80 / 860], [1.0, 0.86, 0.3], budget)


class TestPrefixCosts:
    def test_prefix_costs_are_cumulative(self):
        fractions = prefix_cpu_fractions(s2s_profile(1.0))
        assert fractions[0] == 0.0
        assert fractions[1] == pytest.approx(0.0)
        assert fractions[2] == pytest.approx(0.13, rel=0.01)
        assert fractions[3] == pytest.approx(0.93, rel=0.02)

    def test_prefix_costs_non_decreasing(self):
        fractions = prefix_cpu_fractions(s2s_profile(1.0))
        assert all(fractions[i] <= fractions[i + 1] + 1e-12 for i in range(len(fractions) - 1))


class TestBoundarySelection:
    def test_generous_budget_takes_whole_pipeline(self):
        assert operator_level_boundary(s2s_profile(1.0)) == 3

    def test_tight_budget_takes_only_cheap_prefix(self):
        # 60% of a core fits W+F (13%) but not W+F+G+R (93%).
        assert operator_level_boundary(s2s_profile(0.60)) == 2

    def test_zero_budget_takes_free_operators_only(self):
        assert operator_level_boundary(s2s_profile(0.0)) == 1  # the free window op

    def test_budget_override(self):
        assert operator_level_boundary(s2s_profile(1.0), compute_budget=0.2) == 2

    def test_offload_limit_caps_boundary(self):
        assert operator_level_boundary(s2s_profile(1.0), offload_limit=1) == 1

    def test_negative_budget_rejected(self):
        with pytest.raises(PartitioningError):
            operator_level_boundary(s2s_profile(1.0), compute_budget=-0.1)


class TestLoadFactorConversion:
    def test_boundary_to_load_factors(self):
        assert boundary_to_load_factors(2, 4) == [1.0, 1.0, 0.0, 0.0]
        assert boundary_to_load_factors(0, 3) == [0.0, 0.0, 0.0]
        assert boundary_to_load_factors(3, 3) == [1.0, 1.0, 1.0]

    def test_out_of_range_boundary_rejected(self):
        with pytest.raises(PartitioningError):
            boundary_to_load_factors(5, 3)
        with pytest.raises(PartitioningError):
            boundary_to_load_factors(-1, 3)


class TestOperatorLevelPartitioner:
    def test_solve_reports_boundary_and_cost(self):
        plan = OperatorLevelPartitioner().solve(s2s_profile(0.6))
        assert plan.boundary == 2
        assert plan.load_factors == [1.0, 1.0, 0.0]
        assert plan.local_cpu_fraction == pytest.approx(0.13, rel=0.02)

    def test_solve_many_independent_sources(self):
        partitioner = OperatorLevelPartitioner()
        profiles = [s2s_profile(0.6), s2s_profile(1.0)]
        plans = partitioner.solve_many(profiles)
        assert [p.boundary for p in plans] == [2, 3]

    def test_solve_many_with_budget_overrides(self):
        partitioner = OperatorLevelPartitioner()
        plans = partitioner.solve_many([s2s_profile(1.0)] * 2, budgets=[0.1, 1.0])
        assert [p.boundary for p in plans] == [1, 3]

    def test_solve_many_length_mismatch(self):
        with pytest.raises(PartitioningError):
            OperatorLevelPartitioner().solve_many([s2s_profile(1.0)], budgets=[0.1, 0.2])

    def test_remote_cost_objective_decreases_with_boundary(self):
        partitioner = OperatorLevelPartitioner()
        shallow = partitioner.solve(s2s_profile(0.1))
        deep = partitioner.solve(s2s_profile(1.0))
        assert partitioner.total_remote_cost([deep], 3) < partitioner.total_remote_cost(
            [shallow], 3
        )

    def test_custom_remote_costs_must_decrease(self):
        with pytest.raises(PartitioningError):
            OperatorLevelPartitioner(remote_costs=[1.0, 2.0])
        OperatorLevelPartitioner(remote_costs=[3.0, 2.0, 1.0])  # must not raise
