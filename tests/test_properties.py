"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import assume, given, settings, strategies as st

from repro.core.control_proxy import (
    ControlProxy,
    effective_load_factors,
    load_factors_from_effective,
)
from repro.core.lp_solver import (
    cumulative_relay,
    plan_cpu_fraction,
    plan_drain_fraction,
    solve_data_level_lp,
)
from repro.core.partitioner import boundary_to_load_factors, operator_level_boundary
from repro.core.profiler import OperatorProfile, PipelineProfile
from repro.core.state import OperatorState, QueryState, classify_query_state
from repro.query.aggregates import AvgAggregate, MaxAggregate, MinAggregate, SumAggregate
from repro.simulation.network import NetworkLink


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

load_factors_st = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=6
)

relays_st = st.lists(
    st.floats(min_value=0.01, max_value=1.0, allow_nan=False), min_size=1, max_size=5
)

costs_st = st.lists(
    st.floats(min_value=0.0, max_value=1e-3, allow_nan=False), min_size=1, max_size=5
)

values_st = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=60
)


def make_profile(costs, relays, budget):
    n = min(len(costs), len(relays))
    operators = [
        OperatorProfile(f"op{i}", costs[i], relays[i], 1000, True) for i in range(n)
    ]
    return PipelineProfile(operators, compute_budget=budget, records_per_epoch=1000.0)


# ---------------------------------------------------------------------------
# Load factor algebra
# ---------------------------------------------------------------------------


class TestLoadFactorProperties:
    @given(load_factors_st)
    def test_effective_factors_are_monotone_and_bounded(self, factors):
        effective = effective_load_factors(factors)
        assert all(0.0 <= e <= 1.0 for e in effective)
        assert all(effective[i] >= effective[i + 1] for i in range(len(effective) - 1))

    @given(load_factors_st)
    def test_effective_round_trip(self, factors):
        effective = effective_load_factors(factors)
        recovered = load_factors_from_effective(effective)
        # Where the effective factor upstream is zero, the original p is lost
        # (anything times zero is zero); compare the effective vectors instead.
        assert effective_load_factors(recovered) == [
            0.0 if e < 1e-12 else e for e in effective
        ] or all(
            math.isclose(a, b, abs_tol=1e-9)
            for a, b in zip(effective_load_factors(recovered), effective)
        )

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=100),
           st.floats(min_value=0.0, max_value=1.0))
    def test_proxy_routing_conserves_records(self, values, load_factor):
        proxy = ControlProxy("op", load_factor=load_factor)
        forwarded, drained = proxy.route(values)
        assert len(forwarded) + len(drained) == len(values)
        assert forwarded + drained == values


# ---------------------------------------------------------------------------
# LP solver invariants
# ---------------------------------------------------------------------------


class TestLPSolverProperties:
    @settings(max_examples=40, deadline=None)
    @given(costs_st, relays_st, st.floats(min_value=0.0, max_value=2.0))
    def test_plans_are_feasible_and_monotone(self, costs, relays, budget):
        n = min(len(costs), len(relays))
        assume(n >= 1)
        profile = make_profile(costs[:n], relays[:n], budget)
        plan = solve_data_level_lp(profile)
        assert len(plan.load_factors) == n
        assert all(0.0 <= p <= 1.0 for p in plan.load_factors)
        effective = plan.effective_load_factors
        assert all(effective[i] >= effective[i + 1] - 1e-6 for i in range(n - 1))
        # The plan never exceeds the budget it was given (up to solver
        # tolerance).  The LP's own feasibility slack is ~1e-6, so the
        # reported fraction can legitimately sit a float ulp beyond
        # ``budget + 1e-6``; allow a little headroom on top of the slack.
        assert plan.expected_cpu_fraction <= budget + 5e-6

    @settings(max_examples=40, deadline=None)
    @given(costs_st, relays_st, st.floats(min_value=0.0, max_value=2.0))
    def test_drain_fraction_within_bounds(self, costs, relays, budget):
        n = min(len(costs), len(relays))
        assume(n >= 1)
        profile = make_profile(costs[:n], relays[:n], budget)
        plan = solve_data_level_lp(profile)
        assert -1e-9 <= plan.expected_drain_fraction <= 1.0 + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(costs_st, relays_st,
           st.floats(min_value=0.05, max_value=1.0),
           st.floats(min_value=0.05, max_value=1.0))
    def test_more_budget_never_increases_drain(self, costs, relays, b1, b2):
        n = min(len(costs), len(relays))
        assume(n >= 1)
        low, high = sorted((b1, b2))
        drain_low = solve_data_level_lp(make_profile(costs[:n], relays[:n], low)).expected_drain_fraction
        drain_high = solve_data_level_lp(make_profile(costs[:n], relays[:n], high)).expected_drain_fraction
        assert drain_high <= drain_low + 1e-6

    @given(relays_st)
    def test_cumulative_relay_is_non_increasing(self, relays):
        cumulative = cumulative_relay(relays)
        assert all(cumulative[i] >= cumulative[i + 1] - 1e-12 for i in range(len(cumulative) - 1))
        assert cumulative[0] == 1.0


# ---------------------------------------------------------------------------
# Operator-level partitioning invariants
# ---------------------------------------------------------------------------


class TestPartitionerProperties:
    @settings(max_examples=40, deadline=None)
    @given(costs_st, relays_st, st.floats(min_value=0.0, max_value=2.0))
    def test_boundary_prefix_always_fits_budget(self, costs, relays, budget):
        n = min(len(costs), len(relays))
        assume(n >= 1)
        profile = make_profile(costs[:n], relays[:n], budget)
        boundary = operator_level_boundary(profile)
        assert 0 <= boundary <= n
        factors = boundary_to_load_factors(boundary, n)
        effective = effective_load_factors(factors)
        cpu = plan_cpu_fraction(effective, profile.costs, profile.relay_ratios, 1000.0)
        assert cpu <= budget + 1e-6

    @settings(max_examples=30, deadline=None)
    @given(costs_st, relays_st, st.floats(min_value=0.05, max_value=1.0))
    def test_data_level_plan_never_drains_more_than_operator_level(self, costs, relays, budget):
        """Data-level partitioning dominates operator-level partitioning."""
        n = min(len(costs), len(relays))
        assume(n >= 1)
        profile = make_profile(costs[:n], relays[:n], budget)
        boundary = operator_level_boundary(profile)
        op_level = plan_drain_fraction(
            effective_load_factors(boundary_to_load_factors(boundary, n)),
            profile.relay_ratios,
        )
        data_level = solve_data_level_lp(profile).expected_drain_fraction
        assert data_level <= op_level + 1e-6


# ---------------------------------------------------------------------------
# Aggregates: merge == union
# ---------------------------------------------------------------------------


class TestAggregateProperties:
    @settings(max_examples=60, deadline=None)
    @given(values_st, st.integers(min_value=0, max_value=59))
    def test_merge_equals_union_for_all_basic_aggregates(self, values, split_at):
        split = min(split_at, len(values))
        left, right = values[:split], values[split:]
        for agg_cls in (SumAggregate, AvgAggregate, MinAggregate, MaxAggregate):
            agg = agg_cls("x")
            state_l = agg.create()
            for v in left:
                state_l = agg.add(state_l, v)
            state_r = agg.create()
            for v in right:
                state_r = agg.add(state_r, v)
            merged = agg.merge(state_l, state_r)
            whole = agg.create()
            for v in values:
                whole = agg.add(whole, v)
            a, b = agg.result(merged), agg.result(whole)
            if math.isnan(a) or math.isnan(b):
                assert math.isnan(a) and math.isnan(b)
            else:
                assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6)


# ---------------------------------------------------------------------------
# Query-state classification and network conservation
# ---------------------------------------------------------------------------


class TestMiscProperties:
    @given(st.lists(st.sampled_from(list(OperatorState)), min_size=1, max_size=8))
    def test_classification_matches_paper_rule(self, states):
        result = classify_query_state(states)
        if any(s is OperatorState.CONGESTED for s in states):
            assert result is QueryState.CONGESTED
        elif all(s is OperatorState.IDLE for s in states):
            assert result is QueryState.IDLE
        else:
            assert result is QueryState.STABLE

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=20),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_network_link_conserves_bytes(self, offers, bandwidth):
        link = NetworkLink(bandwidth_mbps=bandwidth)
        total_sent = 0.0
        for offered in offers:
            link.offer(offered)
            total_sent += link.transmit_epoch().sent_bytes
        assert total_sent + link.queued_bytes == (
            sum(offers)
        ) or math.isclose(total_sent + link.queued_bytes, sum(offers), rel_tol=1e-9)
        assert link.queued_bytes >= 0.0
