"""Unit tests for nodes and CPU budget schedules."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.simulation.node import (
    BudgetSchedule,
    DataSourceNode,
    StreamProcessorNode,
    as_budget_schedule,
)
from repro.workloads.dynamics import ResourceDynamics


class TestBudgetSchedule:
    def test_constant_schedule(self):
        schedule = BudgetSchedule.constant(0.6)
        assert schedule.budget_at(0) == 0.6
        assert schedule.budget_at(1000) == 0.6
        assert schedule.change_epochs() == []

    def test_step_schedule_matches_figure_8a(self):
        schedule = BudgetSchedule([(0, 0.10), (3, 0.90), (18, 0.60)])
        assert schedule.budget_at(0) == 0.10
        assert schedule.budget_at(2) == 0.10
        assert schedule.budget_at(3) == 0.90
        assert schedule.budget_at(17) == 0.90
        assert schedule.budget_at(18) == 0.60
        assert schedule.change_epochs() == [3, 18]

    def test_breakpoints_are_sorted_automatically(self):
        schedule = BudgetSchedule([(5, 0.5), (0, 1.0)])
        assert schedule.budget_at(0) == 1.0
        assert schedule.budget_at(5) == 0.5

    def test_requires_epoch_zero_breakpoint(self):
        with pytest.raises(ConfigurationError):
            BudgetSchedule([(2, 0.5)])

    def test_rejects_negative_budgets_and_epochs(self):
        with pytest.raises(ConfigurationError):
            BudgetSchedule([(0, -0.5)])
        schedule = BudgetSchedule.constant(1.0)
        with pytest.raises(ConfigurationError):
            schedule.budget_at(-1)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            BudgetSchedule([])

    def test_schedule_is_callable(self):
        schedule = BudgetSchedule.constant(0.4)
        assert schedule(7) == 0.4

    def test_as_budget_schedule_coercions(self):
        assert as_budget_schedule(0.5).budget_at(10) == 0.5
        assert as_budget_schedule([(0, 0.1), (5, 0.9)]).budget_at(6) == 0.9
        original = BudgetSchedule.constant(0.3)
        assert as_budget_schedule(original) is original


class TestResourceDynamics:
    def test_step_change_factory(self):
        schedule = ResourceDynamics.step_change(0.10, [(3, 0.90), (18, 0.60)])
        assert schedule.budget_at(4) == 0.90

    def test_bursty_foreground(self):
        schedule = ResourceDynamics.bursty_foreground(
            baseline=0.8, burst_budget=0.2, period_epochs=10, burst_epochs=3,
            num_epochs=30, start_offset=5,
        )
        assert schedule.budget_at(0) == 0.8
        assert schedule.budget_at(5) == 0.2
        assert schedule.budget_at(7) == 0.2
        assert schedule.budget_at(8) == 0.8
        assert schedule.budget_at(15) == 0.2

    def test_bursty_foreground_validation(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            ResourceDynamics.bursty_foreground(0.8, 0.2, period_epochs=2, burst_epochs=5, num_epochs=10)

    def test_random_walk_stays_within_bounds(self):
        schedule = ResourceDynamics.random_walk(
            baseline=0.5, num_epochs=300, change_every=20, spread=0.4,
            floor=0.1, ceiling=0.9, seed=11,
        )
        budgets = {schedule.budget_at(epoch) for epoch in range(300)}
        assert all(0.1 <= b <= 0.9 for b in budgets)
        assert len(budgets) > 1


class TestNodes:
    def test_data_source_budget_capped_by_cores(self):
        node = DataSourceNode("n1", cores=1, budget=BudgetSchedule.constant(2.0))
        assert node.budget_at(0) == 1.0
        node2 = DataSourceNode("n2", cores=2, budget=BudgetSchedule.constant(1.5))
        assert node2.budget_at(0) == 1.5

    def test_data_source_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            DataSourceNode("bad", cores=0)

    def test_stream_processor_defaults(self):
        sp = StreamProcessorNode()
        assert sp.cores == 64
        assert sp.compute_capacity_per_epoch(1.0) == 64.0

    def test_stream_processor_validation(self):
        with pytest.raises(ConfigurationError):
            StreamProcessorNode(cores=0)
        with pytest.raises(ConfigurationError):
            StreamProcessorNode(ingress_bandwidth_mbps=0.0)
        with pytest.raises(ConfigurationError):
            StreamProcessorNode().compute_capacity_per_epoch(0.0)
