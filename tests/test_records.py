"""Unit tests for record types and byte/rate conversion helpers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, JarvisError, SimulationError
from repro.query.records import (
    AggregateRecord,
    RecordBatch,
    EnrichedPingmeshRecord,
    IpToTorTable,
    JobStatsRecord,
    LogRecord,
    PingmeshRecord,
    Record,
    PINGMESH_RECORD_BYTES,
    bytes_to_mbps,
    make_log_record,
    make_probe_record,
    half_up,
    mbps_to_bytes,
    record_size_bytes,
    records_per_second,
)


class TestPingmeshRecord:
    def test_size_matches_paper(self):
        record = PingmeshRecord(0.0, 1, 2, 500.0)
        assert record.size_bytes == PINGMESH_RECORD_BYTES == 86

    def test_rtt_conversion_to_ms(self):
        record = PingmeshRecord(0.0, 1, 2, rtt_us=2500.0)
        assert record.rtt_ms == pytest.approx(2.5)

    def test_key_is_server_pair(self):
        record = PingmeshRecord(0.0, 10, 20, 100.0)
        assert record.key() == (10, 20)

    def test_as_dict_round_trip(self):
        record = PingmeshRecord(1.5, 1, 2, 300.0, err_code=1, src_cluster=3, dst_cluster=4)
        data = record.as_dict()
        assert data["event_time"] == 1.5
        assert data["err_code"] == 1
        assert data["src_cluster"] == 3
        assert data["dst_cluster"] == 4

    def test_fields_coerced_to_expected_types(self):
        record = PingmeshRecord(0, "1", "2", "10.5", err_code="0")  # type: ignore[arg-type]
        assert isinstance(record.src_ip, int)
        assert isinstance(record.rtt_us, float)
        assert isinstance(record.err_code, int)


class TestEnrichedPingmeshRecord:
    def test_key_is_tor_pair(self):
        record = EnrichedPingmeshRecord(0.0, 1, 2, 100.0, src_tor=5, dst_tor=9)
        assert record.key() == (5, 9)

    def test_projection_shrinks_record(self):
        raw = PingmeshRecord(0.0, 1, 2, 100.0)
        enriched = EnrichedPingmeshRecord(0.0, 1, 2, 100.0, 5, 9)
        assert enriched.size_bytes < raw.size_bytes

    def test_as_dict_includes_tor_fields(self):
        record = EnrichedPingmeshRecord(0.0, 1, 2, 100.0, 5, 9)
        data = record.as_dict()
        assert data["src_tor"] == 5
        assert data["dst_tor"] == 9


class TestLogAndJobStatsRecords:
    def test_log_record_size_tracks_line_length(self):
        record = LogRecord(0.0, "x" * 120)
        assert record.size_bytes == 120

    def test_empty_log_record_has_minimum_size(self):
        assert LogRecord(0.0, "").size_bytes == 1

    def test_job_stats_key(self):
        record = JobStatsRecord(0.0, "tenant_a", "cpu util", 55.0)
        assert record.key() == ("tenant_a", "cpu util", 55.0)

    def test_job_stats_smaller_than_typical_log_line(self):
        line = LogRecord(0.0, "Tenant Name=tenant_a; cpu util=55.0 pad=" + "x" * 40)
        parsed = JobStatsRecord(0.0, "tenant_a", "cpu util", 55.0)
        assert parsed.size_bytes < line.size_bytes


class TestAggregateRecord:
    def test_size_grows_with_extra_values(self):
        small = AggregateRecord(0.0, ("a",), {"avg(rtt)": 1.0})
        large = AggregateRecord(
            0.0, ("a",), {f"v{i}": float(i) for i in range(8)}
        )
        assert large.size_bytes > small.size_bytes

    def test_key_is_group_key(self):
        record = AggregateRecord(0.0, (1, 2), {"avg(rtt)": 1.0})
        assert record.key() == (1, 2)

    def test_values_are_copied(self):
        values = {"avg(rtt)": 1.0}
        record = AggregateRecord(0.0, (), values)
        values["avg(rtt)"] = 99.0
        assert record.values["avg(rtt)"] == 1.0


class TestSizeAndRateHelpers:
    def test_record_size_bytes_sums_sizes(self):
        records = [PingmeshRecord(0.0, 1, 2, 1.0) for _ in range(5)]
        assert record_size_bytes(records) == 5 * 86

    def test_drain_adds_header_overhead(self):
        records = [PingmeshRecord(0.0, 1, 2, 1.0)]
        assert record_size_bytes(records, drain=True) > record_size_bytes(records)

    def test_bytes_to_mbps_round_trip(self):
        rate = bytes_to_mbps(mbps_to_bytes(26.2, 10.0), 10.0)
        assert rate == pytest.approx(26.2)

    def test_bytes_to_mbps_rejects_zero_duration(self):
        with pytest.raises(ConfigurationError):
            bytes_to_mbps(100.0, 0.0)

    def test_mbps_to_bytes_rejects_negative_duration(self):
        with pytest.raises(ConfigurationError):
            mbps_to_bytes(1.0, -1.0)

    def test_records_per_second_matches_paper_estimate(self):
        # 26.2 Mbps of 86-byte records is roughly 38 thousand records/second.
        rate = records_per_second(26.2, 86)
        assert rate == pytest.approx(38081, rel=0.01)

    def test_records_per_second_rejects_bad_record_size(self):
        with pytest.raises(ConfigurationError):
            records_per_second(1.0, 0)

    def test_convenience_constructors(self):
        probe = make_probe_record(0.0, 1, 2, 10.0, err_code=1)
        log = make_log_record(0.0, "hello")
        assert isinstance(probe, PingmeshRecord)
        assert probe.err_code == 1
        assert isinstance(log, LogRecord)

    def test_base_record_defaults(self):
        record = Record(3.0)
        assert record.key() == ()
        assert record.size_bytes > 0
        assert record.as_dict() == {"event_time": 3.0}


class TestIpToTorTable:
    def test_dense_table_covers_all_servers(self):
        table = IpToTorTable.dense(100, servers_per_tor=10)
        assert len(table) == 100
        assert table.lookup(0) == 0
        assert table.lookup(99) == 9
        assert 55 in table

    def test_lookup_missing_ip_returns_none(self):
        table = IpToTorTable.dense(10)
        assert table.lookup(999) is None
        assert 999 not in table

    def test_dense_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            IpToTorTable.dense(-1)
        with pytest.raises(ConfigurationError):
            IpToTorTable.dense(10, servers_per_tor=0)

    def test_custom_mapping(self):
        table = IpToTorTable({7: 3})
        assert table.lookup(7) == 3
        assert len(table) == 1


class TestHalfUp:
    def test_ties_round_up_not_to_even(self):
        # Builtin round() gives 0 and 2 here (half-to-even); the routing
        # arithmetic needs 1 and 2 so throughput does not depend on the
        # parity of the record count.
        assert half_up(0.5) == 1
        assert half_up(1.5) == 2
        assert half_up(2.5) == 3

    def test_matches_round_away_from_ties(self):
        for value in (0.0, 0.49, 0.51, 3.2, 7.8):
            assert half_up(value) == round(value + 1e-12) or half_up(value) == int(value + 0.5)

    def test_route_arithmetic_is_monotone_in_n(self):
        # 0.5 load factor over n records forwards ceil(n/2) for every n.
        for n in range(10):
            assert half_up(0.5 * n) == (n + 1) // 2


class TestBatchedPathErrorsAreProjectErrors:
    """Regression: batched-path validation failures must be catchable via the
    repro.errors hierarchy (they were bare ValueError before simlint SL007)."""

    def test_missing_event_time_column(self):
        with pytest.raises(SimulationError):
            RecordBatch(PingmeshRecord, {"rtt_us": [1.0]}, uniform_size_bytes=86)

    def test_ragged_columns(self):
        with pytest.raises(SimulationError):
            RecordBatch(
                PingmeshRecord,
                {"event_time": [0.0, 1.0], "rtt_us": [1.0]},
                uniform_size_bytes=86,
            )

    def test_missing_size_information(self):
        with pytest.raises(SimulationError):
            RecordBatch(PingmeshRecord, {"event_time": [0.0]})

    def test_sizes_length_mismatch(self):
        with pytest.raises(SimulationError):
            RecordBatch(
                PingmeshRecord, {"event_time": [0.0]}, sizes=[86, 86]
            )

    def test_from_records_empty(self):
        with pytest.raises(SimulationError):
            RecordBatch.from_records([])

    def test_from_records_mixed_types(self):
        records = [PingmeshRecord(0.0, 1, 2, 1.0), LogRecord(0.0, "x")]
        with pytest.raises(SimulationError):
            RecordBatch.from_records(records)

    def test_all_catchable_as_jarvis_error(self):
        with pytest.raises(JarvisError):
            RecordBatch.from_records([])
        with pytest.raises(JarvisError):
            bytes_to_mbps(1.0, 0.0)
