"""Tests for run metrics and the building-block executor."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import make_strategy, run_single_source
from repro.core.state import QueryState
from repro.errors import SimulationError
from repro.simulation.executor import BuildingBlockExecutor, ExecutorConfig
from repro.simulation.metrics import EpochMetrics, RunMetrics
from repro.simulation.node import BudgetSchedule


def em(epoch, input_bytes=1000.0, goodput=1000.0, latency=0.5, state=QueryState.STABLE,
       offered_net=200.0, sent=200.0, queued=0.0):
    return EpochMetrics(
        epoch=epoch,
        input_bytes=input_bytes,
        goodput_bytes=goodput,
        network_bytes_offered=offered_net,
        network_bytes_sent=sent,
        network_queue_bytes=queued,
        cpu_used_seconds=0.5,
        cpu_budget_seconds=1.0,
        sp_cpu_seconds=0.1,
        source_backlog_records=0,
        latency_s=latency,
        query_state=state,
    )


class TestRunMetrics:
    def test_throughput_and_network_rates(self):
        metrics = RunMetrics(epoch_duration_s=1.0)
        for i in range(10):
            metrics.record(em(i))
        assert metrics.throughput_mbps() == pytest.approx(1000 * 8 / 1e6)
        assert metrics.offered_mbps() == pytest.approx(1000 * 8 / 1e6)
        assert metrics.network_mbps() == pytest.approx(200 * 8 / 1e6)
        assert metrics.network_sent_mbps() == pytest.approx(200 * 8 / 1e6)

    def test_warmup_epochs_excluded(self):
        metrics = RunMetrics(epoch_duration_s=1.0, warmup_epochs=5)
        for i in range(5):
            metrics.record(em(i, goodput=0.0))
        for i in range(5, 10):
            metrics.record(em(i, goodput=1000.0))
        assert metrics.throughput_mbps() == pytest.approx(1000 * 8 / 1e6)
        assert len(metrics.measured_epochs()) == 5

    def test_latency_bound_filters_late_epochs(self):
        metrics = RunMetrics(epoch_duration_s=1.0)
        metrics.record(em(0, latency=1.0))
        metrics.record(em(1, latency=30.0))
        unbounded = metrics.throughput_mbps()
        bounded = metrics.throughput_mbps(latency_bound_s=5.0)
        assert bounded == pytest.approx(unbounded / 2)

    def test_latency_statistics(self):
        metrics = RunMetrics(epoch_duration_s=1.0)
        for latency in (0.5, 1.0, 9.0):
            metrics.record(em(len(metrics.epochs), latency=latency))
        assert metrics.median_latency_s() == 1.0
        assert metrics.max_latency_s() == 9.0

    def test_cpu_utilization(self):
        metrics = RunMetrics(epoch_duration_s=1.0)
        metrics.record(em(0))
        assert metrics.mean_cpu_utilization() == pytest.approx(0.5)

    def test_empty_metrics_are_zero(self):
        metrics = RunMetrics(epoch_duration_s=1.0)
        assert metrics.throughput_mbps() == 0.0
        assert metrics.median_latency_s() == 0.0
        assert metrics.mean_cpu_utilization() == 0.0

    def test_convergence_epochs(self):
        metrics = RunMetrics(epoch_duration_s=1.0)
        states = [
            QueryState.STABLE,
            QueryState.CONGESTED,
            QueryState.CONGESTED,
            QueryState.STABLE,
            QueryState.STABLE,
            QueryState.STABLE,
        ]
        for i, state in enumerate(states):
            metrics.record(em(i, state=state))
        assert metrics.convergence_epochs(change_epoch=1) == 2

    def test_convergence_none_when_never_stable(self):
        metrics = RunMetrics(epoch_duration_s=1.0)
        for i in range(4):
            metrics.record(em(i, state=QueryState.CONGESTED))
        assert metrics.convergence_epochs(0) is None

    def test_summary_keys(self):
        metrics = RunMetrics(epoch_duration_s=1.0)
        metrics.record(em(0))
        summary = metrics.summary()
        for key in (
            "throughput_mbps",
            "offered_mbps",
            "network_mbps",
            "median_latency_s",
            "max_latency_s",
            "cpu_utilization",
        ):
            assert key in summary


class TestExecutor:
    def test_run_produces_requested_epochs(self, s2s_setup):
        metrics = run_single_source(s2s_setup, "Jarvis", 0.6, num_epochs=12, warmup_epochs=4)
        assert len(metrics) == 12
        assert metrics.metadata["strategy"] == "Jarvis"

    def test_run_rejects_zero_epochs(self, s2s_setup):
        strategy = make_strategy("All-SP", s2s_setup, 0.5)
        executor = BuildingBlockExecutor(
            s2s_setup.plan,
            s2s_setup.workload_factory(1),
            s2s_setup.cost_model,
            strategy,
            0.5,
            ExecutorConfig(config=s2s_setup.config),
        )
        with pytest.raises(SimulationError):
            executor.run(0)

    def test_all_sp_throughput_bounded_by_bandwidth(self, s2s_setup):
        metrics = run_single_source(s2s_setup, "All-SP", 1.0, num_epochs=20, warmup_epochs=5)
        assert metrics.throughput_mbps() <= s2s_setup.bandwidth_mbps * 1.15
        assert metrics.mean_cpu_utilization() == 0.0

    def test_all_src_throughput_bounded_by_cpu(self, s2s_setup):
        metrics = run_single_source(s2s_setup, "All-Src", 0.4, num_epochs=20, warmup_epochs=5)
        # The query needs ~0.93 of a core; at 0.4 it can only keep up with
        # roughly 43% of the offered input.
        assert metrics.throughput_mbps() < 0.6 * metrics.offered_mbps()
        # All-Src never drains raw records; only the aggregate output crosses
        # the network at window boundaries, far less than the ~90% of input a
        # filter-only partition would ship.
        assert metrics.network_mbps() < 0.45 * metrics.offered_mbps()

    def test_budget_schedule_is_respected(self, s2s_setup):
        schedule = BudgetSchedule([(0, 0.1), (5, 0.9)])
        metrics = run_single_source(s2s_setup, "Best-OP", schedule, num_epochs=10, warmup_epochs=0)
        early = metrics.epochs[1]
        late = metrics.epochs[9]
        assert early.cpu_budget_seconds == pytest.approx(0.1)
        assert late.cpu_budget_seconds == pytest.approx(0.9)

    def test_jarvis_uses_more_cpu_than_best_op_under_tight_budget(self, s2s_setup):
        jarvis = run_single_source(s2s_setup, "Jarvis", 0.6, num_epochs=25, warmup_epochs=12)
        best_op = run_single_source(s2s_setup, "Best-OP", 0.6, num_epochs=25, warmup_epochs=12)
        assert jarvis.mean_cpu_utilization() > best_op.mean_cpu_utilization()
        assert jarvis.network_mbps() < best_op.network_mbps()

    def test_load_factors_are_recorded_per_epoch(self, s2s_setup):
        metrics = run_single_source(s2s_setup, "Jarvis", 0.6, num_epochs=10, warmup_epochs=0)
        assert all(len(em.load_factors) == 3 for em in metrics.epochs)
