"""End-to-end integration tests across the query, core, and simulation layers."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import make_setup, run_single_source
from repro.baselines import JarvisStrategy
from repro.core.state import QueryState, RuntimePhase
from repro.query.builder import s2s_probe_query
from repro.simulation.node import BudgetSchedule
from repro.workloads.pingmesh import PingmeshConfig, PingmeshWorkload, s2s_cost_model
from repro.workloads.traces import record_trace, replay_trace


class TestExactnessOfDataLevelPartitioning:
    """Partitioned execution must produce the same answer as centralized execution.

    This is the key accuracy property that distinguishes Jarvis from data
    synopses (Section VI-D): splitting records between the data source and the
    stream processor, then merging partial aggregates, loses nothing.
    """

    def _final_rows(self, trace, load_factors, cost_model):
        """Run one window of the trace with the given source load factors and
        return the merged per-pair aggregate rows produced at the SP."""
        from repro.config import ProxyThresholds
        from repro.simulation.pipeline import SourcePipeline, StreamProcessorPipeline

        plan = s2s_probe_query().logical_plan().physical_plan()
        source = SourcePipeline(
            plan.source_operators(), cost_model, ProxyThresholds(), 10.0, 1.0
        )
        sp = StreamProcessorPipeline(
            plan.stream_processor_operators(), cost_model, 10.0, 1.0
        )
        source.set_load_factors(load_factors)
        rows = []
        for epoch in range(10):
            result = source.run_epoch(trace.epochs[epoch], cpu_budget_fraction=4.0)
            out = sp.process_epoch(
                drained=result.drained,
                partial_states=result.partial_states,
                emitted=result.emitted,
            )
            rows.extend(out.final_outputs)
        return {row.group_key: row for row in rows if hasattr(row, "group_key")}

    def test_partitioned_results_match_centralized_results(self):
        workload = PingmeshWorkload(
            PingmeshConfig(records_per_epoch=150, peers=100, seed=21)
        )
        trace = record_trace(workload, num_epochs=10)
        cost_model = s2s_cost_model(reference_records_per_second=150)

        centralized = self._final_rows(trace, [0.0, 0.0, 0.0], cost_model)
        partitioned = self._final_rows(trace, [1.0, 1.0, 0.6], cost_model)

        assert centralized, "centralized run must produce aggregate rows"
        assert set(partitioned) == set(centralized)
        for key, row in centralized.items():
            other = partitioned[key]
            assert other.count == row.count
            for column, value in row.values.items():
                assert other.values[column] == pytest.approx(value)


class TestAdaptationScenarios:
    def test_jarvis_stabilizes_after_budget_drop_and_rise(self, s2s_setup):
        schedule = BudgetSchedule([(0, 0.90), (12, 0.40), (26, 0.90)])
        metrics = run_single_source(
            s2s_setup, "Jarvis", schedule, num_epochs=40, warmup_epochs=0
        )
        states = metrics.state_timeline()
        # Re-stabilizes within roughly a dozen epochs of each change (3
        # detection epochs + profile + a few adapt epochs), the same order of
        # magnitude as the paper's seven-second convergence bound.
        assert metrics.convergence_epochs(12) is not None
        assert metrics.convergence_epochs(12) <= 12
        assert metrics.convergence_epochs(26) is not None
        assert metrics.convergence_epochs(26) <= 12
        assert states[-1] is QueryState.STABLE

    def test_jarvis_network_traffic_tracks_budget_direction(self, s2s_setup):
        """More compute at the source means less data drained over the network."""
        schedule = BudgetSchedule([(0, 0.30), (15, 0.90)])
        metrics = run_single_source(
            s2s_setup, "Jarvis", schedule, num_epochs=34, warmup_epochs=0
        )
        epoch_s = s2s_setup.config.epoch.duration_s
        low_window = metrics.epochs[8:14]
        high_window = metrics.epochs[28:]
        low_net = sum(em.network_bytes_offered for em in low_window) / len(low_window)
        high_net = sum(em.network_bytes_offered for em in high_window) / len(high_window)
        assert high_net < low_net
        factors_low = metrics.epochs[13].load_factors
        factors_high = metrics.epochs[-1].load_factors
        assert sum(factors_high) >= sum(factors_low)

    def test_runtime_phase_visits_profile_and_adapt(self, s2s_setup):
        metrics = run_single_source(s2s_setup, "Jarvis", 0.7, num_epochs=12, warmup_epochs=0)
        phases = [p for p in metrics.phase_timeline() if p is not None]
        assert RuntimePhase.PROFILE in phases
        assert RuntimePhase.ADAPT in phases
        assert phases[-1] is RuntimePhase.PROBE

    def test_replayed_trace_gives_identical_jarvis_behaviour(self):
        """Determinism: the same trace and config produce the same metrics."""
        setup = make_setup("s2s_probe", records_per_epoch=150, seed=5)

        def run_once():
            return run_single_source(setup, "Jarvis", 0.6, num_epochs=20, warmup_epochs=5, seed=9)

        a, b = run_once(), run_once()
        assert a.throughput_mbps() == pytest.approx(b.throughput_mbps())
        assert a.network_mbps() == pytest.approx(b.network_mbps())
        assert [em.load_factors for em in a.epochs] == [em.load_factors for em in b.epochs]


class TestCrossQueryBehaviour:
    def test_t2t_join_table_growth_raises_compute_demand(self, t2t_setup):
        from repro.query.records import IpToTorTable

        join = t2t_setup.plan.operators[2]
        base_cost = t2t_setup.cost_model.cost_per_record(join)
        original_table = join.table
        try:
            join.table = IpToTorTable.dense(10 * max(1, len(original_table)))
            grown_cost = t2t_setup.cost_model.cost_per_record(join)
        finally:
            join.table = original_table
        assert grown_cost > base_cost

    def test_log_analytics_runs_fully_local_with_enough_budget(self, log_setup):
        metrics = run_single_source(log_setup, "Jarvis", 0.8, num_epochs=25, warmup_epochs=12)
        # The whole query costs ~31% of a core, so at 80% nothing is drained
        # except the aggregate output at window boundaries.
        assert metrics.network_mbps() < 0.25 * metrics.offered_mbps()
        assert metrics.throughput_mbps() == pytest.approx(metrics.offered_mbps(), rel=0.15)

    def test_jarvis_beats_all_src_on_expensive_t2t_query(self, t2t_setup):
        jarvis = run_single_source(t2t_setup, "Jarvis", 0.4, num_epochs=25, warmup_epochs=12)
        all_src = run_single_source(t2t_setup, "All-Src", 0.4, num_epochs=25, warmup_epochs=12)
        assert jarvis.throughput_mbps() > 2.0 * all_src.throughput_mbps()
