"""Unit tests for the data-synopsis (sampling) comparison components."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.query.records import PingmeshRecord
from repro.synopsis.estimators import (
    alert_analysis,
    estimation_error_cdf,
    evaluate_sampling_accuracy,
)
from repro.synopsis.sampling import WindowSampler, sampled_pair_ranges
from repro.workloads.pingmesh import PingmeshConfig, PingmeshWorkload


def anomaly_records(num=4000, seed=11):
    workload = PingmeshWorkload(
        PingmeshConfig(
            records_per_epoch=num,
            peers=num // 3,
            error_rate=0.0,
            anomaly_peer_fraction=0.03,
            anomaly_probability=0.6,
            seed=seed,
        )
    )
    return workload.records_for_epoch(0)


class TestWindowSampler:
    def test_sampling_rate_validation(self):
        with pytest.raises(WorkloadError):
            WindowSampler(0.0)
        with pytest.raises(WorkloadError):
            WindowSampler(1.2)

    def test_sample_size_close_to_rate(self):
        records = anomaly_records(5000)
        result = WindowSampler(0.4, seed=1).sample_window(records)
        assert result.input_records == 5000
        assert result.sampled_records == pytest.approx(2000, rel=0.1)
        assert result.transfer_fraction == pytest.approx(0.4, abs=0.05)

    def test_full_rate_keeps_everything(self):
        records = anomaly_records(200)
        result = WindowSampler(1.0).sample_window(records)
        assert result.sampled_records == 200
        assert result.transfer_fraction == pytest.approx(1.0)

    def test_network_rate_computation(self):
        records = anomaly_records(1000)
        result = WindowSampler(0.5, seed=2).sample_window(records)
        assert result.network_mbps(10.0) == pytest.approx(
            result.sampled_bytes * 8 / 1e6 / 10.0
        )
        with pytest.raises(WorkloadError):
            result.network_mbps(0.0)

    def test_sample_epochs_accumulates(self):
        epochs = [anomaly_records(500, seed=i) for i in range(3)]
        result = WindowSampler(0.3, seed=3).sample_epochs(epochs)
        assert result.input_records == 1500
        assert 0 < result.sampled_records < 1500

    def test_sampled_pair_ranges_skip_errors(self):
        records = [
            PingmeshRecord(0.0, 1, 2, 1000.0),
            PingmeshRecord(0.0, 1, 2, 3000.0),
            PingmeshRecord(0.0, 1, 2, 9999999.0, err_code=1),
        ]
        ranges = sampled_pair_ranges(records)
        assert ranges[(1, 2)] == (1.0, 3.0)


class TestEstimationAccuracy:
    def test_higher_sampling_rate_is_more_accurate(self):
        records = anomaly_records()
        low = evaluate_sampling_accuracy(records, 0.2, seed=5)
        high = evaluate_sampling_accuracy(records, 0.8, seed=5)
        assert high.fraction_within(1.0) >= low.fraction_within(1.0)
        assert high.transfer_fraction > low.transfer_fraction

    def test_low_sampling_rates_miss_errors_beyond_1ms(self):
        """The paper observes 20-40% of estimation errors exceed 1 ms at low rates."""
        records = anomaly_records()
        result = evaluate_sampling_accuracy(records, 0.2, seed=7)
        assert result.fraction_within(1.0) < 0.95

    def test_error_cdf_is_monotone(self):
        records = anomaly_records()
        result = evaluate_sampling_accuracy(records, 0.4, seed=2)
        cdf = result.error_cdf([0.5, 1.0, 5.0, 50.0])
        assert all(cdf[i] <= cdf[i + 1] for i in range(len(cdf) - 1))
        assert cdf[-1] == pytest.approx(1.0)

    def test_estimation_error_cdf_helper(self):
        cdf = estimation_error_cdf([0.1, 0.5, 2.0, 8.0], [1.0, 10.0])
        assert cdf == [0.5, 1.0]
        assert estimation_error_cdf([], [1.0]) == [1.0]
        with pytest.raises(WorkloadError):
            estimation_error_cdf([1.0], [])

    def test_requires_pingmesh_records(self):
        with pytest.raises(WorkloadError):
            evaluate_sampling_accuracy([], 0.5)


class TestAlertAnalysis:
    def test_sampling_misses_alerts_at_low_rates(self):
        records = anomaly_records()
        low = alert_analysis(records, 0.2, threshold_ms=5.0, seed=3)
        high = alert_analysis(records, 0.9, threshold_ms=5.0, seed=3)
        assert low.true_alerts > 0
        assert low.miss_rate >= high.miss_rate
        assert low.miss_rate > 0.0

    def test_no_alerts_means_zero_miss_rate(self):
        records = [PingmeshRecord(0.0, 1, 2, 100.0) for _ in range(50)]
        analysis = alert_analysis(records, 0.5, threshold_ms=5.0)
        assert analysis.true_alerts == 0
        assert analysis.miss_rate == 0.0

    def test_requires_records(self):
        with pytest.raises(WorkloadError):
            alert_analysis([], 0.5)
