"""Unit tests for the StepWise-Adapt algorithm and its fine-tuner."""

from __future__ import annotations

import pytest

from repro.config import AdaptationConfig
from repro.core.lp_solver import cumulative_relay
from repro.core.profiler import OperatorProfile, PipelineProfile
from repro.core.state import QueryState
from repro.core.stepwise_adapt import (
    AdaptationResult,
    FineTuner,
    StepWiseAdapt,
    operator_priorities,
)
from repro.errors import PartitioningError


def profile_for(costs, relays, budget, records=1000.0):
    ops = [
        OperatorProfile(f"op{i}", c, r, 1000, True)
        for i, (c, r) in enumerate(zip(costs, relays))
    ]
    return PipelineProfile(ops, compute_budget=budget, records_per_epoch=records)


class TestOperatorPriorities:
    def test_lower_relay_means_higher_priority(self):
        assert operator_priorities([1.0, 0.86, 0.3]) == [2, 1, 0]

    def test_ties_broken_towards_upstream(self):
        assert operator_priorities([0.5, 0.5, 0.5]) == [0, 1, 2]

    def test_empty(self):
        assert operator_priorities([]) == []


class TestFineTuner:
    def test_stable_state_converges_immediately(self):
        tuner = FineTuner([1.0, 0.5])
        result = tuner.step(QueryState.STABLE, [0.5, 0.5])
        assert result.converged is True
        assert result.changed is False
        assert result.load_factors == [0.5, 0.5]

    def test_idle_increases_highest_priority_operator_first(self):
        tuner = FineTuner([1.0, 0.86, 0.3])
        result = tuner.step(QueryState.IDLE, [0.0, 0.0, 0.0])
        assert result.tuned_operator == 2
        assert result.load_factors[2] > 0.0

    def test_congested_decreases_lowest_priority_operator_first(self):
        tuner = FineTuner([1.0, 0.86, 0.3])
        result = tuner.step(QueryState.CONGESTED, [1.0, 1.0, 1.0])
        assert result.tuned_operator == 0
        assert result.load_factors[0] < 1.0

    def test_idle_with_everything_at_one_converges(self):
        tuner = FineTuner([1.0, 0.5])
        result = tuner.step(QueryState.IDLE, [1.0, 1.0])
        assert result.converged is True
        assert result.changed is False

    def test_congested_with_everything_at_zero_converges(self):
        tuner = FineTuner([1.0, 0.5])
        result = tuner.step(QueryState.CONGESTED, [0.0, 0.0])
        assert result.converged is True

    def test_wrong_vector_length_rejected(self):
        tuner = FineTuner([1.0, 0.5])
        with pytest.raises(PartitioningError):
            tuner.step(QueryState.IDLE, [0.5])

    def test_load_factors_stay_in_bounds(self):
        tuner = FineTuner([0.9, 0.5, 0.2])
        factors = [0.0, 0.0, 0.0]
        for _ in range(50):
            result = tuner.step(QueryState.IDLE, factors)
            factors = result.load_factors
            assert all(0.0 <= p <= 1.0 for p in factors)

    def test_binary_search_converges_against_oracle(self):
        """Alternating congested/idle feedback converges to a feasible point."""
        costs = [0.2 / 1000, 0.8 / 1000]
        relays = [0.9, 0.3]
        budget = 0.5
        upstream = cumulative_relay(relays)
        tuner = FineTuner(relays)
        factors = [0.0, 0.0]

        def oracle(fs):
            effective, running = [], 1.0
            for p in fs:
                running *= p
                effective.append(running)
            used = 1000 * sum(u * e * c for u, e, c in zip(upstream, effective, costs))
            if used > budget * 1.05:
                return QueryState.CONGESTED
            if used < budget * 0.85 and any(p < 1.0 for p in fs):
                return QueryState.IDLE
            return QueryState.STABLE

        for _ in range(60):
            state = oracle(factors)
            if state is QueryState.STABLE:
                break
            result = tuner.step(state, factors)
            factors = result.load_factors
            if result.converged and not result.changed:
                break
        effective, running = [], 1.0
        for p in factors:
            running *= p
            effective.append(running)
        used = 1000 * sum(u * e * c for u, e, c in zip(upstream, effective, costs))
        assert used <= budget * 1.10

    def test_iteration_cap_respected(self):
        config = AdaptationConfig(max_finetune_epochs=3)
        tuner = FineTuner([1.0, 0.5], config)
        factors = [0.0, 0.0]
        converged_at = None
        for i in range(10):
            result = tuner.step(QueryState.CONGESTED if i % 2 else QueryState.IDLE, factors)
            factors = result.load_factors
            if result.converged:
                converged_at = i
                break
        assert converged_at is not None and converged_at <= 4


class TestStepWiseAdapt:
    def test_lp_init_produces_feasible_factors(self):
        adapt = StepWiseAdapt()
        profile = profile_for([0.0, 0.13 / 1000, 0.8 / 860], [1.0, 0.86, 0.3], 0.6)
        factors = adapt.initial_load_factors(profile)
        assert len(factors) == 3
        assert all(0.0 <= p <= 1.0 for p in factors)
        assert adapt.last_plan is not None
        assert adapt.last_plan.expected_cpu_fraction <= 0.6 + 1e-6

    def test_headroom_undershoots_budget(self):
        config = AdaptationConfig(budget_headroom=0.2)
        adapt = StepWiseAdapt(config)
        profile = profile_for([0.5 / 1000], [0.2], 1.0)
        adapt.initial_load_factors(profile)
        assert adapt.last_plan.expected_cpu_fraction <= 0.8 + 1e-6

    def test_no_lp_init_starts_at_zero(self):
        adapt = StepWiseAdapt(AdaptationConfig(use_lp_init=False))
        profile = profile_for([0.1 / 1000], [0.5], 0.5)
        assert adapt.initial_load_factors(profile) == [0.0]
        assert adapt.last_plan is None

    def test_fine_tune_disabled_returns_converged(self):
        adapt = StepWiseAdapt(AdaptationConfig(use_finetune=False))
        profile = profile_for([0.1 / 1000], [0.5], 0.5)
        factors = adapt.initial_load_factors(profile)
        result = adapt.fine_tune(QueryState.CONGESTED, factors)
        assert result.converged is True
        assert result.load_factors == factors

    def test_fine_tune_before_init_rejected(self):
        adapt = StepWiseAdapt()
        with pytest.raises(PartitioningError):
            adapt.fine_tune(QueryState.IDLE, [0.5])

    def test_fine_tune_after_init_adjusts(self):
        adapt = StepWiseAdapt()
        profile = profile_for([0.0, 0.13 / 1000, 0.8 / 860], [1.0, 0.86, 0.3], 0.6)
        factors = adapt.initial_load_factors(profile)
        result = adapt.fine_tune(QueryState.CONGESTED, factors)
        assert isinstance(result, AdaptationResult)
        assert len(result.load_factors) == 3

    def test_reset_requires_new_init(self):
        adapt = StepWiseAdapt()
        profile = profile_for([0.1 / 1000], [0.5], 0.5)
        adapt.initial_load_factors(profile)
        adapt.reset()
        with pytest.raises(PartitioningError):
            adapt.fine_tune(QueryState.IDLE, [0.5])
