"""Unit tests for incremental aggregate functions."""

from __future__ import annotations

import math

import pytest

from repro.errors import QueryDefinitionError
from repro.query.aggregates import (
    AGGREGATE_REGISTRY,
    AggregateState,
    ApproxQuantileAggregate,
    AvgAggregate,
    CountAggregate,
    ExactQuantileAggregate,
    MaxAggregate,
    MinAggregate,
    SumAggregate,
    all_incremental,
    make_aggregate,
)


def fold(agg, values):
    state = agg.create()
    for value in values:
        state = agg.add(state, value)
    return state


class TestBasicAggregates:
    def test_sum(self):
        agg = SumAggregate("x")
        assert agg.result(fold(agg, [1.0, 2.0, 3.5])) == pytest.approx(6.5)

    def test_count_ignores_values(self):
        agg = CountAggregate("x")
        assert agg.result(fold(agg, [10.0, -5.0, 0.0])) == 3.0

    def test_min_and_max(self):
        values = [3.0, -1.0, 7.5, 2.0]
        assert MinAggregate("x").result(fold(MinAggregate("x"), values)) == -1.0
        assert MaxAggregate("x").result(fold(MaxAggregate("x"), values)) == 7.5

    def test_min_of_empty_state_is_nan(self):
        agg = MinAggregate("x")
        assert math.isnan(agg.result(agg.create()))

    def test_avg(self):
        agg = AvgAggregate("x")
        assert agg.result(fold(agg, [1.0, 2.0, 3.0, 4.0])) == pytest.approx(2.5)

    def test_avg_of_empty_state_is_nan(self):
        agg = AvgAggregate("x")
        assert math.isnan(agg.result(agg.create()))

    def test_output_names_embed_field(self):
        assert AvgAggregate("rtt").output_name() == "avg(rtt)"
        assert MaxAggregate("rtt").output_name() == "max(rtt)"


class TestMergeability:
    """Merging two partial states must equal aggregating the union (R-1)."""

    @pytest.mark.parametrize(
        "agg_cls", [SumAggregate, CountAggregate, MinAggregate, MaxAggregate, AvgAggregate]
    )
    def test_merge_equals_union(self, agg_cls):
        agg = agg_cls("x")
        left = [1.0, 5.0, 2.0]
        right = [10.0, -3.0]
        merged = agg.merge(fold(agg, left), fold(agg, right))
        assert agg.result(merged) == pytest.approx(agg.result(fold(agg, left + right)))

    def test_merge_with_empty_state(self):
        agg = MaxAggregate("x")
        merged = agg.merge(agg.create(), fold(agg, [4.0]))
        assert agg.result(merged) == 4.0

    def test_avg_merge_keeps_exact_counts(self):
        agg = AvgAggregate("x")
        merged = agg.merge(fold(agg, [2.0]), fold(agg, [4.0, 6.0]))
        assert agg.result(merged) == pytest.approx(4.0)


class TestQuantiles:
    def test_approx_quantile_close_to_exact_on_uniform_data(self):
        agg = ApproxQuantileAggregate("x", quantile=0.5, max_samples=64)
        values = [float(i) for i in range(1000)]
        estimate = agg.result(fold(agg, values))
        assert abs(estimate - 499.5) <= 25.0

    def test_approx_quantile_state_is_bounded(self):
        agg = ApproxQuantileAggregate("x", quantile=0.9, max_samples=32)
        state = fold(agg, [float(i) for i in range(10_000)])
        assert len(state.values) <= 32
        assert state.count == 10_000

    def test_approx_quantile_merge(self):
        agg = ApproxQuantileAggregate("x", quantile=0.5, max_samples=128)
        merged = agg.merge(
            fold(agg, [float(i) for i in range(500)]),
            fold(agg, [float(i) for i in range(500, 1000)]),
        )
        assert abs(agg.result(merged) - 499.5) <= 50.0

    def test_approx_quantile_is_incremental_but_exact_is_not(self):
        assert ApproxQuantileAggregate("x").incremental is True
        assert ExactQuantileAggregate("x").incremental is False

    def test_quantile_validation(self):
        with pytest.raises(QueryDefinitionError):
            ApproxQuantileAggregate("x", quantile=1.5)
        with pytest.raises(QueryDefinitionError):
            ApproxQuantileAggregate("x", max_samples=1)

    def test_exact_quantile_exact_result(self):
        agg = ExactQuantileAggregate("x", quantile=0.5)
        assert agg.result(fold(agg, [1.0, 2.0, 3.0])) == 2.0

    def test_empty_quantile_is_nan(self):
        agg = ApproxQuantileAggregate("x")
        assert math.isnan(agg.result(agg.create()))

    def test_output_name_encodes_percentile(self):
        assert ApproxQuantileAggregate("rtt", quantile=0.95).output_name() == "p95(rtt)"


class TestRegistry:
    def test_registry_contains_paper_aggregates(self):
        for name in ("sum", "count", "min", "max", "avg", "approx_quantile"):
            assert name in AGGREGATE_REGISTRY

    def test_make_aggregate_by_name(self):
        agg = make_aggregate("avg", "rtt")
        assert isinstance(agg, AvgAggregate)
        assert agg.field == "rtt"

    def test_make_aggregate_unknown_name(self):
        with pytest.raises(QueryDefinitionError):
            make_aggregate("median_of_medians", "rtt")

    def test_all_incremental_helper(self):
        assert all_incremental([AvgAggregate("x"), MaxAggregate("x")]) is True
        assert all_incremental([AvgAggregate("x"), ExactQuantileAggregate("x")]) is False


class TestAggregateState:
    def test_add_and_results(self):
        state = AggregateState([AvgAggregate("rtt"), MaxAggregate("rtt")])
        state.add({"rtt": 1.0})
        state.add({"rtt": 3.0})
        results = state.results()
        assert results["avg(rtt)"] == pytest.approx(2.0)
        assert results["max(rtt)"] == 3.0
        assert state.count == 2

    def test_missing_field_defaults_to_zero(self):
        state = AggregateState([SumAggregate("rtt")])
        state.add({})
        assert state.results()["sum(rtt)"] == 0.0

    def test_merge_combines_counts_and_values(self):
        aggs = [AvgAggregate("rtt")]
        a = AggregateState(aggs)
        b = AggregateState(aggs)
        a.add({"rtt": 2.0})
        b.add({"rtt": 4.0})
        b.add({"rtt": 6.0})
        a.merge(b)
        assert a.count == 3
        assert a.results()["avg(rtt)"] == pytest.approx(4.0)

    def test_merge_shape_mismatch_raises(self):
        a = AggregateState([AvgAggregate("rtt")])
        b = AggregateState([AvgAggregate("rtt"), MaxAggregate("rtt")])
        with pytest.raises(QueryDefinitionError):
            a.merge(b)
