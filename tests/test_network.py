"""Unit tests for the bandwidth-limited network model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.simulation.network import (
    NetworkLink,
    SharedLink,
    max_min_fair_share,
    weighted_max_min_fair_share,
)


class TestNetworkLink:
    def test_capacity_conversion(self):
        link = NetworkLink(bandwidth_mbps=8.0, epoch_duration_s=1.0)
        assert link.bytes_per_second == pytest.approx(1e6)
        assert link.capacity_bytes_per_epoch == pytest.approx(1e6)

    def test_under_capacity_transmits_everything(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(500_000)
        result = link.transmit_epoch()
        assert result.sent_bytes == pytest.approx(500_000)
        assert result.queued_bytes == 0.0
        assert result.queue_delay_s == 0.0
        assert result.utilization == pytest.approx(0.5)

    def test_over_capacity_queues_excess(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(1_500_000)
        result = link.transmit_epoch()
        assert result.sent_bytes == pytest.approx(1e6)
        assert result.queued_bytes == pytest.approx(500_000)
        assert result.queue_delay_s == pytest.approx(0.5)
        assert result.utilization == pytest.approx(1.0)

    def test_queue_drains_over_multiple_epochs(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(2_500_000)
        link.transmit_epoch()
        link.transmit_epoch()
        result = link.transmit_epoch()
        assert result.queued_bytes == 0.0
        assert link.total_sent_bytes == pytest.approx(2_500_000)

    def test_cumulative_counters(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(100.0)
        link.offer(200.0)
        link.transmit_epoch()
        assert link.total_offered_bytes == pytest.approx(300.0)
        assert link.total_sent_bytes == pytest.approx(300.0)

    def test_reset(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(1e7)
        link.transmit_epoch()
        link.reset()
        assert link.queued_bytes == 0.0
        assert link.total_sent_bytes == 0.0
        assert link.total_offered_bytes == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            NetworkLink(0.0)
        with pytest.raises(ConfigurationError):
            NetworkLink(1.0, epoch_duration_s=0.0)

    def test_construction_rejects_degenerate_bandwidth(self):
        """Regression/hardening: transmit_epoch divides by bytes_per_second,
        so zero, negative, and non-finite bandwidths (and epoch durations)
        must raise a loud ConfigurationError at construction instead of a
        latent ZeroDivisionError or NaN-poisoned queue delay mid-run."""
        for link_class in (NetworkLink, SharedLink):
            for bad in (0.0, -1.0, float("nan"), float("inf")):
                with pytest.raises(ConfigurationError):
                    link_class(bad)
            for bad in (0.0, -0.5, float("nan"), float("inf")):
                with pytest.raises(ConfigurationError):
                    link_class(1.0, epoch_duration_s=bad)

    def test_rejects_negative_offer(self):
        link = NetworkLink(1.0)
        with pytest.raises(SimulationError):
            link.offer(-5.0)

    def test_withdraw_moves_queued_bytes_out(self):
        """Live migration pulls a departing source's queued bytes off the
        link: the queue and the cumulative offered counter both roll back."""
        link = NetworkLink(1.0)
        link.offer(1000.0)
        link.transmit_epoch(max_bytes=300.0)
        assert link.withdraw(500.0) == 500.0
        assert link.queued_bytes == pytest.approx(200.0)
        assert link.total_offered_bytes == pytest.approx(500.0)
        assert link.total_sent_bytes == pytest.approx(300.0)

    def test_withdraw_validations(self):
        link = NetworkLink(1.0)
        link.offer(100.0)
        with pytest.raises(SimulationError):
            link.withdraw(-1.0)
        with pytest.raises(SimulationError):
            link.withdraw(200.0)
        # Sub-tolerance float residue clamps instead of going negative.
        assert link.withdraw(100.0 + 1e-9) == pytest.approx(100.0)
        assert link.queued_bytes == 0.0

    def test_sub_second_epochs(self):
        link = NetworkLink(8.0, epoch_duration_s=0.5)
        assert link.capacity_bytes_per_epoch == pytest.approx(500_000)


class TestSharedLink:
    def test_fair_share(self):
        link = SharedLink(total_bandwidth_mbps=100.0)
        assert link.fair_share_mbps(4) == pytest.approx(25.0)

    def test_fair_share_requires_positive_sources(self):
        with pytest.raises(SimulationError):
            SharedLink(100.0).fair_share_mbps(0)

    def test_shared_link_is_a_network_link(self):
        link = SharedLink(10.0)
        link.offer(1000.0)
        assert link.transmit_epoch().sent_bytes == pytest.approx(1000.0)


class TestFairShareAllocation:
    def link(self, mbps=8.0):
        return SharedLink(total_bandwidth_mbps=mbps)  # 1e6 bytes/epoch at 8 Mbps

    def test_under_capacity_grants_every_demand(self):
        allocations = self.link().allocate_fair_share([100.0, 200.0, 300.0])
        assert allocations == pytest.approx([100.0, 200.0, 300.0])

    def test_saturated_equal_demands_split_evenly(self):
        allocations = self.link().allocate_fair_share([2e6, 2e6, 2e6, 2e6])
        assert allocations == pytest.approx([250_000.0] * 4)

    def test_water_filling_redistributes_unused_share(self):
        # One light source (100K) and two heavy ones: the light source keeps
        # its demand, the remaining 900K splits evenly between the heavies.
        allocations = self.link().allocate_fair_share([100_000.0, 2e6, 2e6])
        assert allocations[0] == pytest.approx(100_000.0)
        assert allocations[1] == pytest.approx(450_000.0)
        assert allocations[2] == pytest.approx(450_000.0)

    def test_allocation_never_exceeds_capacity(self):
        link = self.link()
        allocations = link.allocate_fair_share([5e5, 9e5, 3e5, 7e5])
        assert sum(allocations) <= link.capacity_bytes_per_epoch + 1e-6

    def test_zero_demands_get_nothing(self):
        allocations = self.link().allocate_fair_share([0.0, 4e6])
        assert allocations[0] == 0.0
        assert allocations[1] == pytest.approx(1e6)

    def test_empty_demands(self):
        assert self.link().allocate_fair_share([]) == []

    def test_negative_demand_rejected(self):
        with pytest.raises(SimulationError):
            self.link().allocate_fair_share([-1.0])


class TestExplicitCapacityAllocation:
    def test_module_function_matches_link_method(self):
        link = SharedLink(total_bandwidth_mbps=8.0)  # 1e6 bytes per epoch
        demands = [7e5, 2e5, 4e5]
        assert link.allocate_fair_share(demands) == max_min_fair_share(
            demands, link.capacity_bytes_per_epoch
        )

    def test_link_method_accepts_external_budget(self):
        link = SharedLink(total_bandwidth_mbps=8.0)
        assert link.allocate_fair_share([600.0, 600.0], capacity_bytes=300.0) == [
            pytest.approx(150.0),
            pytest.approx(150.0),
        ]

    def test_budget_split_is_capacity_independent(self):
        assert max_min_fair_share([100.0, 400.0], 300.0) == [
            pytest.approx(100.0),
            pytest.approx(200.0),
        ]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            max_min_fair_share([-1.0], 100.0)
        with pytest.raises(SimulationError):
            max_min_fair_share([1.0], -5.0)


class TestWeightedAllocation:
    def test_saturated_split_follows_weights(self):
        grants = weighted_max_min_fair_share([1e6, 1e6, 1e6], [2.0, 1.0, 1.0], 400.0)
        assert grants == [
            pytest.approx(200.0),
            pytest.approx(100.0),
            pytest.approx(100.0),
        ]

    def test_work_conserving_redistribution(self):
        """A light claimant keeps its demand; its surplus flows to the heavy
        ones weighted by their weights."""
        grants = weighted_max_min_fair_share([30.0, 1e6, 1e6], [2.0, 1.0, 1.0], 400.0)
        assert grants[0] == pytest.approx(30.0)
        assert grants[1] == pytest.approx(185.0)
        assert grants[2] == pytest.approx(185.0)
        assert sum(grants) == pytest.approx(400.0)

    def test_sole_claimant_owns_the_capacity(self):
        """A single query is granted the full link even below its demand: the
        grant is an upper bound, and this keeps the single-query co-located
        path bit-identical to the standalone executor."""
        assert weighted_max_min_fair_share([10.0], [3.0], 400.0) == [400.0]

    def test_idle_claimants_get_nothing(self):
        grants = weighted_max_min_fair_share([0.0, 500.0], [5.0, 1.0], 400.0)
        assert grants == [0.0, pytest.approx(400.0)]

    def test_under_capacity_grants_every_demand(self):
        grants = weighted_max_min_fair_share([50.0, 20.0], [1.0, 9.0], 400.0)
        assert grants == [pytest.approx(50.0), pytest.approx(20.0)]

    def test_never_exceeds_capacity(self):
        grants = weighted_max_min_fair_share(
            [300.0, 300.0, 300.0], [1.0, 2.0, 5.0], 500.0
        )
        assert sum(grants) <= 500.0 + 1e-9

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            weighted_max_min_fair_share([1.0], [1.0, 2.0], 100.0)
        with pytest.raises(SimulationError):
            weighted_max_min_fair_share([1.0, 1.0], [1.0, 0.0], 100.0)
        with pytest.raises(SimulationError):
            weighted_max_min_fair_share([1.0, -1.0], [1.0, 1.0], 100.0)
        assert weighted_max_min_fair_share([], [], 100.0) == []


class TestTransmitMaxBytes:
    def test_caps_transmission_below_capacity(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(900_000)
        result = link.transmit_epoch(max_bytes=300_000)
        assert result.sent_bytes == pytest.approx(300_000)
        assert result.queued_bytes == pytest.approx(600_000)

    def test_cap_above_queue_is_harmless(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(100.0)
        assert link.transmit_epoch(max_bytes=1e9).sent_bytes == pytest.approx(100.0)

    def test_negative_cap_rejected(self):
        link = NetworkLink(8.0, 1.0)
        with pytest.raises(SimulationError):
            link.transmit_epoch(max_bytes=-1.0)
