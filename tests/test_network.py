"""Unit tests for the bandwidth-limited network model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.simulation.network import NetworkLink, SharedLink


class TestNetworkLink:
    def test_capacity_conversion(self):
        link = NetworkLink(bandwidth_mbps=8.0, epoch_duration_s=1.0)
        assert link.bytes_per_second == pytest.approx(1e6)
        assert link.capacity_bytes_per_epoch == pytest.approx(1e6)

    def test_under_capacity_transmits_everything(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(500_000)
        result = link.transmit_epoch()
        assert result.sent_bytes == pytest.approx(500_000)
        assert result.queued_bytes == 0.0
        assert result.queue_delay_s == 0.0
        assert result.utilization == pytest.approx(0.5)

    def test_over_capacity_queues_excess(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(1_500_000)
        result = link.transmit_epoch()
        assert result.sent_bytes == pytest.approx(1e6)
        assert result.queued_bytes == pytest.approx(500_000)
        assert result.queue_delay_s == pytest.approx(0.5)
        assert result.utilization == pytest.approx(1.0)

    def test_queue_drains_over_multiple_epochs(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(2_500_000)
        link.transmit_epoch()
        link.transmit_epoch()
        result = link.transmit_epoch()
        assert result.queued_bytes == 0.0
        assert link.total_sent_bytes == pytest.approx(2_500_000)

    def test_cumulative_counters(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(100.0)
        link.offer(200.0)
        link.transmit_epoch()
        assert link.total_offered_bytes == pytest.approx(300.0)
        assert link.total_sent_bytes == pytest.approx(300.0)

    def test_reset(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(1e7)
        link.transmit_epoch()
        link.reset()
        assert link.queued_bytes == 0.0
        assert link.total_sent_bytes == 0.0
        assert link.total_offered_bytes == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            NetworkLink(0.0)
        with pytest.raises(ConfigurationError):
            NetworkLink(1.0, epoch_duration_s=0.0)

    def test_rejects_negative_offer(self):
        link = NetworkLink(1.0)
        with pytest.raises(SimulationError):
            link.offer(-5.0)

    def test_sub_second_epochs(self):
        link = NetworkLink(8.0, epoch_duration_s=0.5)
        assert link.capacity_bytes_per_epoch == pytest.approx(500_000)


class TestSharedLink:
    def test_fair_share(self):
        link = SharedLink(total_bandwidth_mbps=100.0)
        assert link.fair_share_mbps(4) == pytest.approx(25.0)

    def test_fair_share_requires_positive_sources(self):
        with pytest.raises(SimulationError):
            SharedLink(100.0).fair_share_mbps(0)

    def test_shared_link_is_a_network_link(self):
        link = SharedLink(10.0)
        link.offer(1000.0)
        assert link.transmit_epoch().sent_bytes == pytest.approx(1000.0)


class TestFairShareAllocation:
    def link(self, mbps=8.0):
        return SharedLink(total_bandwidth_mbps=mbps)  # 1e6 bytes/epoch at 8 Mbps

    def test_under_capacity_grants_every_demand(self):
        allocations = self.link().allocate_fair_share([100.0, 200.0, 300.0])
        assert allocations == pytest.approx([100.0, 200.0, 300.0])

    def test_saturated_equal_demands_split_evenly(self):
        allocations = self.link().allocate_fair_share([2e6, 2e6, 2e6, 2e6])
        assert allocations == pytest.approx([250_000.0] * 4)

    def test_water_filling_redistributes_unused_share(self):
        # One light source (100K) and two heavy ones: the light source keeps
        # its demand, the remaining 900K splits evenly between the heavies.
        allocations = self.link().allocate_fair_share([100_000.0, 2e6, 2e6])
        assert allocations[0] == pytest.approx(100_000.0)
        assert allocations[1] == pytest.approx(450_000.0)
        assert allocations[2] == pytest.approx(450_000.0)

    def test_allocation_never_exceeds_capacity(self):
        link = self.link()
        allocations = link.allocate_fair_share([5e5, 9e5, 3e5, 7e5])
        assert sum(allocations) <= link.capacity_bytes_per_epoch + 1e-6

    def test_zero_demands_get_nothing(self):
        allocations = self.link().allocate_fair_share([0.0, 4e6])
        assert allocations[0] == 0.0
        assert allocations[1] == pytest.approx(1e6)

    def test_empty_demands(self):
        assert self.link().allocate_fair_share([]) == []

    def test_negative_demand_rejected(self):
        with pytest.raises(SimulationError):
            self.link().allocate_fair_share([-1.0])


class TestTransmitMaxBytes:
    def test_caps_transmission_below_capacity(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(900_000)
        result = link.transmit_epoch(max_bytes=300_000)
        assert result.sent_bytes == pytest.approx(300_000)
        assert result.queued_bytes == pytest.approx(600_000)

    def test_cap_above_queue_is_harmless(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(100.0)
        assert link.transmit_epoch(max_bytes=1e9).sent_bytes == pytest.approx(100.0)

    def test_negative_cap_rejected(self):
        link = NetworkLink(8.0, 1.0)
        with pytest.raises(SimulationError):
            link.transmit_epoch(max_bytes=-1.0)
