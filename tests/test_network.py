"""Unit tests for the bandwidth-limited network model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.simulation.network import NetworkLink, SharedLink


class TestNetworkLink:
    def test_capacity_conversion(self):
        link = NetworkLink(bandwidth_mbps=8.0, epoch_duration_s=1.0)
        assert link.bytes_per_second == pytest.approx(1e6)
        assert link.capacity_bytes_per_epoch == pytest.approx(1e6)

    def test_under_capacity_transmits_everything(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(500_000)
        result = link.transmit_epoch()
        assert result.sent_bytes == pytest.approx(500_000)
        assert result.queued_bytes == 0.0
        assert result.queue_delay_s == 0.0
        assert result.utilization == pytest.approx(0.5)

    def test_over_capacity_queues_excess(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(1_500_000)
        result = link.transmit_epoch()
        assert result.sent_bytes == pytest.approx(1e6)
        assert result.queued_bytes == pytest.approx(500_000)
        assert result.queue_delay_s == pytest.approx(0.5)
        assert result.utilization == pytest.approx(1.0)

    def test_queue_drains_over_multiple_epochs(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(2_500_000)
        link.transmit_epoch()
        link.transmit_epoch()
        result = link.transmit_epoch()
        assert result.queued_bytes == 0.0
        assert link.total_sent_bytes == pytest.approx(2_500_000)

    def test_cumulative_counters(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(100.0)
        link.offer(200.0)
        link.transmit_epoch()
        assert link.total_offered_bytes == pytest.approx(300.0)
        assert link.total_sent_bytes == pytest.approx(300.0)

    def test_reset(self):
        link = NetworkLink(8.0, 1.0)
        link.offer(1e7)
        link.transmit_epoch()
        link.reset()
        assert link.queued_bytes == 0.0
        assert link.total_sent_bytes == 0.0
        assert link.total_offered_bytes == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            NetworkLink(0.0)
        with pytest.raises(ConfigurationError):
            NetworkLink(1.0, epoch_duration_s=0.0)

    def test_rejects_negative_offer(self):
        link = NetworkLink(1.0)
        with pytest.raises(SimulationError):
            link.offer(-5.0)

    def test_sub_second_epochs(self):
        link = NetworkLink(8.0, epoch_duration_s=0.5)
        assert link.capacity_bytes_per_epoch == pytest.approx(500_000)


class TestSharedLink:
    def test_fair_share(self):
        link = SharedLink(total_bandwidth_mbps=100.0)
        assert link.fair_share_mbps(4) == pytest.approx(25.0)

    def test_fair_share_requires_positive_sources(self):
        with pytest.raises(SimulationError):
            SharedLink(100.0).fair_share_mbps(0)

    def test_shared_link_is_a_network_link(self):
        link = SharedLink(10.0)
        link.offer(1000.0)
        assert link.transmit_epoch().sent_bytes == pytest.approx(1000.0)
