"""Tests for dynamic re-placement: live source migration between blocks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.experiments import (
    HotspotWorkload,
    dynamic_replacement_sweep,
    make_setup,
)
from repro.baselines import AllSPStrategy
from repro.errors import SimulationError
from repro.simulation.metrics import ClusterEpochMetrics
from repro.simulation.multisource import MultiSourceConfig, homogeneous_sources
from repro.simulation.node import StreamProcessorNode
from repro.simulation.sharding import (
    NeverMigrate,
    SaturationMigrationPolicy,
    ShardedClusterExecutor,
)


@pytest.fixture(scope="module")
def setup():
    return make_setup("s2s_probe", records_per_epoch=120)


def fleet(setup, num_sources, seed=10, budget=1.0):
    return homogeneous_sources(
        num_sources,
        workload_factory=lambda i: setup.workload_factory(seed + i),
        strategy_factory=lambda i: AllSPStrategy(),
        budget=budget,
    )


def build(setup, num_sources=4, num_blocks=2, ingress_mbps=0.5,
          record_mode="object", migration=None, seed=10, placement="round_robin"):
    return ShardedClusterExecutor(
        plan=setup.plan,
        cost_model=setup.cost_model,
        sources=fleet(setup, num_sources, seed=seed),
        num_blocks=num_blocks,
        placement=placement,
        cluster_config=MultiSourceConfig(
            config=setup.config,
            stream_processor=StreamProcessorNode(ingress_bandwidth_mbps=ingress_mbps),
            record_mode=record_mode,
        ),
        migration=migration,
    )


def link_queues_consistent(executor):
    """Every block's link queue equals its sources' remaining demand."""
    for block in executor.blocks:
        demand = sum(block._remaining_demand(s) for s in block._sources)
        if abs(demand - block.link.queued_bytes) > 1e-3:
            return False
    return True


def cluster_epoch(epoch=0, sent=80.0, queued=0.0, capacity=100.0, backlog=0):
    return ClusterEpochMetrics(
        epoch=epoch,
        network_offered_bytes=sent,
        network_sent_bytes=sent,
        network_queued_bytes=queued,
        network_capacity_bytes=capacity,
        sp_cpu_used_seconds=0.0,
        sp_cpu_capacity_seconds=1.0,
        sp_backlog_records=backlog,
    )


class TestMigrationMechanics:
    @pytest.mark.parametrize("record_mode", ["object", "batched", "arena"])
    def test_migrate_conserves_records_and_link_queues(self, setup, record_mode):
        """The handoff moves queued bytes between links and keeps every
        record accounted for, on a link tight enough that carryover queues,
        partial-transfer progress, and SP backlogs are all non-empty."""
        executor = build(setup, ingress_mbps=0.05, record_mode=record_mode)
        for _ in range(5):
            executor.run_epoch()
        queued_before = executor.blocks[0].link.queued_bytes
        assert queued_before > 0
        event = executor.migrate("source-0", 1)
        assert event.moved_bytes > 0
        assert event.in_flight_records > 0
        assert executor.assignment()["source-0"] == 1
        assert link_queues_consistent(executor)
        assert executor.verify_record_conservation() == []
        for _ in range(6):
            executor.run_epoch()
        assert executor.verify_record_conservation() == []
        assert link_queues_consistent(executor)

    def test_migrated_source_timeline_is_continuous(self, setup):
        """The source keeps producing per-epoch metrics under its own name
        across the move — one continuous timeline, no gap, no rename."""
        executor = build(setup)
        seen = []
        for epoch in range(6):
            if epoch == 3:
                executor.migrate("source-0", 1)
            metrics = executor.run_epoch()
            assert "source-0" in metrics
            seen.append(metrics["source-0"].epoch)
        assert seen == list(range(6))

    def test_migration_drains_block_and_block_keeps_stepping(self, setup):
        """Regression companion to the empty-block fix: migrating every
        source off a block leaves it stepping zero-byte epochs with its
        capacity still in the merge."""
        executor = build(setup, num_sources=4, num_blocks=2)
        executor.run_epoch()
        for name, block in executor.assignment().items():
            if block == 0:
                executor.migrate(name, 1)
        assert executor.blocks[0].num_sources == 0
        for _ in range(3):
            executor.run_epoch()
        assert executor.verify_record_conservation() == []
        merged = executor._last_cluster_epoch
        single = executor.blocks[0].link.capacity_bytes_per_epoch
        assert merged.network_capacity_bytes == pytest.approx(2 * single)

    def test_migrate_validations(self, setup):
        executor = build(setup)
        with pytest.raises(SimulationError, match="unknown source"):
            executor.migrate("nope", 1)
        with pytest.raises(SimulationError, match="only"):
            executor.migrate("source-0", 5)
        with pytest.raises(SimulationError, match="already on block"):
            executor.migrate("source-0", executor.block_of("source-0"))

    def test_attach_rejects_misaligned_blocks(self, setup):
        """Blocks must be step-aligned: attaching a source detached at a
        different epoch count would tear its timeline."""
        executor = build(setup)
        executor.run_epoch()
        handoff = executor.blocks[0].detach_source("source-0")
        other = build(setup, seed=50)  # fresh: zero epochs stepped
        with pytest.raises(SimulationError, match="lockstep"):
            other.blocks[0].attach_source(handoff)

    def test_attach_rejects_record_mode_mismatch(self, setup):
        executor = build(setup, record_mode="object")
        handoff = executor.blocks[0].detach_source("source-0")
        other = build(setup, seed=50, record_mode="batched")
        with pytest.raises(SimulationError, match="record mode"):
            other.blocks[0].attach_source(handoff)

    def test_attach_rejects_duplicate_source(self, setup):
        executor = build(setup)
        handoff = executor.blocks[0].detach_source("source-0")
        other = build(setup)  # same source names
        with pytest.raises(SimulationError, match="already registered"):
            other.blocks[0].attach_source(handoff)

    def test_detach_unknown_source_rejected(self, setup):
        executor = build(setup)
        with pytest.raises(SimulationError, match="unknown source"):
            executor.blocks[0].detach_source("source-1")  # lives on block 1


class TestDisabledMigrationEquivalence:
    @pytest.mark.parametrize("record_mode", ["object", "batched"])
    def test_never_migrating_run_matches_static_run_exactly(self, setup, record_mode):
        """Acceptance: with migration disabled (or a policy that never
        moves), the sharded executor's output is bit-identical to the
        static per-block-completion path."""
        static = build(setup, ingress_mbps=0.2, record_mode=record_mode)
        dynamic = build(
            setup, ingress_mbps=0.2, record_mode=record_mode,
            migration=NeverMigrate(),
        )
        a = static.run(12, warmup_epochs=3)
        b = dynamic.run(12, warmup_epochs=3)
        assert b.summary() == a.summary()
        assert sorted(b.source_names()) == sorted(a.source_names())
        for name in a.source_names():
            assert b.per_source[name].epochs == a.per_source[name].epochs
        for mine, theirs in zip(b.cluster_epochs, a.cluster_epochs):
            assert mine == theirs
        assert b.num_migrations() == 0
        timeline = b.placement_timeline()
        assert len(timeline) == 12
        assert all(snapshot == dynamic.assignment() for snapshot in timeline)


class TestSaturationPolicy:
    def test_hysteresis_requires_consecutive_saturation(self):
        policy = SaturationMigrationPolicy(hot_epochs=2, cooldown_epochs=0)
        assignment = {"a": 0, "b": 1}
        offered = {"a": 30.0, "b": 10.0}
        hot = cluster_epoch(sent=100.0, queued=50.0)   # pressure 1.5
        cold = cluster_epoch(sent=10.0)                # pressure 0.1
        calm = cluster_epoch(sent=50.0)                # pressure 0.5
        # One saturated epoch: streak too short, no move.
        assert policy.decide(1, [hot, cold], assignment, offered) == []
        # The streak resets when the block cools down.
        assert policy.decide(2, [calm, cold], assignment, offered) == []
        assert policy.decide(3, [hot, cold], assignment, offered) == []
        # Two consecutive saturated epochs: the move fires.
        decisions = policy.decide(4, [hot, cold], assignment, offered)
        assert [ (d.source, d.from_block, d.to_block) for d in decisions ] == [
            ("a", 0, 1)
        ]

    def test_cooldown_freezes_migrated_source(self):
        policy = SaturationMigrationPolicy(hot_epochs=1, cooldown_epochs=10)
        hot = cluster_epoch(sent=100.0, queued=50.0)
        cold = cluster_epoch(sent=10.0)
        decisions = policy.decide(1, [hot, cold], {"a": 0}, {"a": 30.0})
        assert len(decisions) == 1
        # Still on the hot block (the executor normally applies the move;
        # here it did not), but frozen: no decision until the cooldown ends.
        assert policy.decide(2, [hot, cold], {"a": 0}, {"a": 30.0}) == []

    def test_no_move_without_a_target_that_fits(self):
        policy = SaturationMigrationPolicy(
            hot_epochs=1, cooldown_epochs=0, relief_pressure=0.5
        )
        hot = cluster_epoch(sent=100.0, queued=50.0)
        busy = cluster_epoch(sent=45.0)  # 0.45 + 120/100 would blow past 0.5
        assert policy.decide(1, [hot, busy], {"a": 0, "b": 1}, {"a": 120.0, "b": 45.0}) == []

    def test_heaviest_movable_source_moves_first(self):
        policy = SaturationMigrationPolicy(
            hot_epochs=1, cooldown_epochs=0, rate_smoothing=1.0
        )
        hot = cluster_epoch(sent=100.0, queued=100.0, capacity=100.0)
        cold = cluster_epoch(sent=0.0, capacity=10_000.0)
        assignment = {"small": 0, "big": 0, "other": 1}
        offered = {"small": 10.0, "big": 90.0, "other": 0.0}
        decisions = policy.decide(1, [hot, cold], assignment, offered)
        assert decisions[0].source == "big"

    def test_multiple_moves_account_for_each_other(self):
        """Regression: with max_moves_per_epoch > 1, the second decision
        must project against post-first-move pressures — two hot blocks must
        not both dump their heaviest source onto one target past
        relief_pressure on stale numbers."""
        policy = SaturationMigrationPolicy(
            hot_epochs=1, cooldown_epochs=0, max_moves_per_epoch=2,
            relief_pressure=0.85, rate_smoothing=1.0,
        )
        hot_a = cluster_epoch(sent=100.0, queued=50.0)  # pressure 1.5
        hot_b = cluster_epoch(sent=100.0, queued=40.0)  # pressure 1.4
        cold = cluster_epoch(sent=40.0)                 # pressure 0.4
        assignment = {"a": 0, "b": 1, "c": 2}
        offered = {"a": 40.0, "b": 40.0, "c": 0.0}
        decisions = policy.decide(1, [hot_a, hot_b, cold], assignment, offered)
        # First move fits (0.4 + 0.4 = 0.8 <= 0.85); the second would project
        # 0.8 + 0.4 = 1.2 on the updated pressures and must be refused.
        assert [(d.source, d.to_block) for d in decisions] == [("a", 2)]

    def test_sp_backlog_threshold_triggers(self):
        policy = SaturationMigrationPolicy(
            hot_epochs=1, cooldown_epochs=0, sp_backlog_records=100
        )
        compute_bound = cluster_epoch(sent=10.0, backlog=500)  # link is fine
        cold = cluster_epoch(sent=10.0)
        decisions = policy.decide(1, [compute_bound, cold], {"a": 0}, {"a": 10.0})
        assert len(decisions) == 1

    def test_knob_validation(self):
        with pytest.raises(SimulationError):
            SaturationMigrationPolicy(relief_pressure=1.2, saturation_pressure=1.0)
        with pytest.raises(SimulationError):
            SaturationMigrationPolicy(hot_epochs=0)
        with pytest.raises(SimulationError):
            SaturationMigrationPolicy(cooldown_epochs=-1)
        with pytest.raises(SimulationError):
            SaturationMigrationPolicy(max_moves_per_epoch=0)
        with pytest.raises(SimulationError):
            SaturationMigrationPolicy(rate_smoothing=0.0)


class TestHotspotRecovery:
    @pytest.mark.parametrize("record_mode", ["object", "batched"])
    def test_dynamic_recovers_half_the_goodput_gap(self, record_mode):
        """Acceptance: on the mid-run hotspot scenario, dynamic re-placement
        recovers >= 50% of the static-to-oracle goodput gap, migrations
        execute, and records are conserved (enforced inside the sweep) — in
        both record modes."""
        result = dynamic_replacement_sweep(
            records_per_epoch=120,
            num_epochs=30,
            shift_epoch=8,
            record_mode=record_mode,
        )
        assert result["oracle_mbps"] > result["static_mbps"]
        assert result["dynamic_mbps"] > result["static_mbps"]
        assert result["gap_recovered"] >= 0.5
        assert len(result["migrations"]) >= 1
        # Every migration moved a hot-block source off block 0.
        hot = set(result["scenario"]["hot_sources"])
        for event in result["migrations"]:
            assert event["source"] in hot
            assert event["from_block"] == 0
        # Run metadata carries the dynamic-placement story.
        dynamic = result["dynamic"]
        assert dynamic.num_migrations() == len(result["migrations"])
        timeline = dynamic.placement_timeline()
        assert len(timeline) == 30
        assert timeline[0] == result["scenario"]["static_assignment"]
        assert timeline[-1] == dynamic.metadata["final_assignment"]

    def test_both_modes_agree_exactly(self):
        results = {
            mode: dynamic_replacement_sweep(
                records_per_epoch=120, num_epochs=24, shift_epoch=6,
                record_mode=mode,
            )
            for mode in ("object", "batched")
        }
        for key in ("static_mbps", "dynamic_mbps", "oracle_mbps"):
            assert results["object"][key] == results["batched"][key]
        assert [
            (e["epoch"], e["source"], e["to_block"])
            for e in results["object"]["migrations"]
        ] == [
            (e["epoch"], e["source"], e["to_block"])
            for e in results["batched"]["migrations"]
        ]


class TestHotspotWorkload:
    def test_rate_shifts_but_declared_rate_stays_nominal(self, setup):
        base = setup.workload_factory(3)
        nominal = base.input_rate_mbps
        shifted = HotspotWorkload(setup.workload_factory(3), shift_epoch=2, factor=2.0)
        assert shifted.input_rate_mbps == nominal
        before = shifted.batch_for_epoch(0)
        after = shifted.batch_for_epoch(2)
        assert len(after) == 2 * len(before)

    def test_object_and_batched_views_agree(self, setup):
        a = HotspotWorkload(setup.workload_factory(3), shift_epoch=1, factor=2.5)
        b = HotspotWorkload(setup.workload_factory(3), shift_epoch=1, factor=2.5)
        for epoch in range(3):
            records = a.records_for_epoch(epoch)
            batch = b.batch_for_epoch(epoch)
            assert len(records) == len(batch)

    def test_rejects_shrinking_factor(self, setup):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            HotspotWorkload(setup.workload_factory(0), shift_epoch=1, factor=0.5)


class TestMigrationScheduleProperty:
    @settings(max_examples=6, deadline=None)
    @given(
        data=st.data(),
        num_sources=st.integers(min_value=2, max_value=5),
        num_blocks=st.integers(min_value=2, max_value=3),
        ingress=st.floats(min_value=0.005, max_value=2.0),
        record_mode=st.sampled_from(["object", "batched"]),
    )
    def test_conservation_holds_across_arbitrary_schedules(
        self, setup, data, num_sources, num_blocks, ingress, record_mode
    ):
        """Property (acceptance): record conservation and goodput accounting
        hold across arbitrary migration schedules — random sources moved to
        random blocks at random epochs — in both record modes."""
        executor = build(
            setup,
            num_sources=num_sources,
            num_blocks=num_blocks,
            ingress_mbps=ingress,
            record_mode=record_mode,
        )
        for epoch in range(8):
            metrics = executor.run_epoch()
            for name, em in metrics.items():
                assert 0.0 <= em.goodput_bytes <= em.input_bytes + 1e-9, name
            if data.draw(st.booleans(), label=f"migrate@{epoch}"):
                source = data.draw(
                    st.sampled_from(sorted(executor.assignment())),
                    label="source",
                )
                current = executor.block_of(source)
                target = data.draw(
                    st.sampled_from(
                        [b for b in range(num_blocks) if b != current]
                    ),
                    label="target",
                )
                executor.migrate(source, target)
                assert executor.verify_record_conservation() == []
                assert link_queues_consistent(executor)
        assert executor.verify_record_conservation() == []
        assert link_queues_consistent(executor)
