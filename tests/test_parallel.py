"""Tests for process-parallel fleet execution (``simulation/parallel.py``).

The contract under test: a :class:`ParallelBlockController` is a drop-in
execution substrate for :class:`ShardedClusterExecutor` — bit-identical
metrics per epoch per source in all three record modes, including under
migration schedules — plus the OS-resource half of the story: shared-memory
arenas in the workers, and pool/segment teardown on every path out,
error paths included.
"""

from __future__ import annotations

import gc
import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.experiments import make_setup
from repro.baselines import AllSPStrategy
from repro.errors import SimulationError
from repro.query.records import FleetArena
from repro.scenarios.loader import spec_from_dict
from repro.scenarios.runner import run_sharded
from repro.scenarios.setups import make_strategy
from repro.simulation.multisource import MultiSourceConfig, homogeneous_sources
from repro.simulation.node import StreamProcessorNode
from repro.simulation.parallel import (
    ParallelBlockController,
    _ShmBumpAllocator,
)
from repro.simulation.sharding import (
    SaturationMigrationPolicy,
    ShardedClusterExecutor,
)

# Tests are exempt from simlint, so the shm module can be imported here
# directly to cross-check the controller's segment handling.
from multiprocessing import shared_memory

RECORD_MODES = ["object", "batched", "arena"]


@pytest.fixture(scope="module")
def setup():
    return make_setup("s2s_probe", records_per_epoch=120)


def fleet(setup, num_sources, seed=10, budget=1.0):
    return homogeneous_sources(
        num_sources,
        workload_factory=lambda i: setup.workload_factory(seed + i),
        strategy_factory=lambda i: AllSPStrategy(),
        budget=budget,
    )


def cluster_config(setup, ingress_mbps=0.5, record_mode="object"):
    return MultiSourceConfig(
        config=setup.config,
        stream_processor=StreamProcessorNode(ingress_bandwidth_mbps=ingress_mbps),
        record_mode=record_mode,
    )


def build_serial(setup, num_sources=4, num_blocks=2, ingress_mbps=0.5,
                 record_mode="object", migration=None, seed=10,
                 placement="round_robin"):
    return ShardedClusterExecutor(
        plan=setup.plan,
        cost_model=setup.cost_model,
        sources=fleet(setup, num_sources, seed=seed),
        num_blocks=num_blocks,
        placement=placement,
        cluster_config=cluster_config(setup, ingress_mbps, record_mode),
        migration=migration,
    )


def build_parallel(setup, num_sources=4, num_blocks=2, ingress_mbps=0.5,
                   record_mode="object", migration=None, seed=10, workers=2,
                   placement="round_robin"):
    return ParallelBlockController(
        plan=setup.plan,
        cost_model=setup.cost_model,
        sources=fleet(setup, num_sources, seed=seed),
        num_blocks=num_blocks,
        placement=placement,
        cluster_config=cluster_config(setup, ingress_mbps, record_mode),
        migration=migration,
        workers=workers,
    )


def assert_runs_identical(serial_run, parallel_run):
    """Every epoch metric of every source must match bit-for-bit."""
    assert serial_run.source_names() == parallel_run.source_names()
    for name in serial_run.source_names():
        serial_epochs = serial_run.per_source[name].epochs
        parallel_epochs = parallel_run.per_source[name].epochs
        assert len(serial_epochs) == len(parallel_epochs)
        for left, right in zip(serial_epochs, parallel_epochs):
            assert left == right, (name, left, right)


# ---------------------------------------------------------------------------
# Worker-side probes: must stay module-level so map_blocks can pickle them
# by reference into the forked workers.
# ---------------------------------------------------------------------------


def _probe_arena_shm(index, block):
    """Is every arena column buffer a view into shared memory?"""
    arena = block.epoch_engine.arena
    if arena is None:
        return None
    buffers = dict(arena._buffers)
    buffers["source_ids"] = arena.source_ids
    buffers["epochs"] = arena.epochs
    return {
        name: isinstance(buffer.base, memoryview)
        for name, buffer in buffers.items()
        if buffer.size
    }


def _probe_rng(index, block):
    """Per-source workload RNG states (both generators), by source name."""
    out = {}
    for state in block.epoch_engine.sources:
        workload = state.workload
        out[state.name] = (
            getattr(workload, "_rng").getstate(),
            repr(getattr(workload, "_np_rng").bit_generator.state),
        )
    return out


def _probe_num_sources(index, block):
    return len(block.epoch_engine.sources)


class _FailAfter:
    """Workload wrapper raising SimulationError from a given epoch on.

    Intercepts every fetch entry point the engine may pick — including the
    arena-mode native ``fill_arena`` — so the failure fires in all three
    record modes.
    """

    def __init__(self, inner, fail_at):
        self.inner = inner
        self.fail_at = fail_at

    def _guard(self, epoch):
        if epoch >= self.fail_at:
            raise SimulationError("injected mid-epoch failure")

    def fill_arena(self, epoch, arena, arena_id):
        self._guard(epoch)
        fill = getattr(self.inner, "fill_arena", None)
        return False if fill is None else fill(epoch, arena, arena_id)

    def batch_for_epoch(self, epoch, *args, **kwargs):
        self._guard(epoch)
        return self.inner.batch_for_epoch(epoch, *args, **kwargs)

    def records_for_epoch(self, epoch, *args, **kwargs):
        self._guard(epoch)
        return self.inner.records_for_epoch(epoch, *args, **kwargs)

    def __getattr__(self, name):
        return getattr(self.inner, name)


# ---------------------------------------------------------------------------
# Bit-identity: parallel is an execution substrate, never a model change.
# ---------------------------------------------------------------------------


class TestBitIdentityRun:
    @pytest.mark.parametrize("record_mode", RECORD_MODES)
    def test_run_matches_serial(self, setup, record_mode):
        serial = build_serial(setup, record_mode=record_mode)
        serial_metrics = serial.run(5, warmup_epochs=1)
        with build_parallel(setup, record_mode=record_mode) as controller:
            parallel_metrics = controller.run(5, warmup_epochs=1)
        assert_runs_identical(serial_metrics, parallel_metrics)
        assert serial_metrics.metadata == parallel_metrics.metadata
        assert (
            serial_metrics.aggregate_throughput_mbps()
            == parallel_metrics.aggregate_throughput_mbps()
        )

    @pytest.mark.parametrize("record_mode", RECORD_MODES)
    def test_lockstep_with_policy_matches_serial(self, setup, record_mode):
        """A saturating fleet under a live SaturationMigrationPolicy: the
        policy must see byte-identical inputs and fire identical moves."""

        def policy():
            return SaturationMigrationPolicy(
                saturation_pressure=1.0, relief_pressure=0.95, hot_epochs=1,
                cooldown_epochs=1,
            )

        # Pile four of the six sources onto block 0: it saturates, blocks 1
        # and 2 stay cool enough to absorb the spillover.
        kwargs = dict(
            num_sources=6, num_blocks=3, ingress_mbps=0.2,
            record_mode=record_mode,
            placement={f"source-{i}": (0 if i < 4 else i - 3) for i in range(6)},
        )
        serial = build_serial(setup, migration=policy(), **kwargs)
        serial_metrics = serial.run(8, warmup_epochs=2)
        with build_parallel(setup, migration=policy(), **kwargs) as controller:
            parallel_metrics = controller.run(8, warmup_epochs=2)
        assert_runs_identical(serial_metrics, parallel_metrics)
        assert serial_metrics.metadata == parallel_metrics.metadata
        # The scenario is tight enough that migration actually happened —
        # otherwise this test silently stops covering the handoff path.
        assert serial_metrics.metadata["migrations"]

    @pytest.mark.parametrize("record_mode", RECORD_MODES)
    def test_per_epoch_stepping_and_manual_migration(self, setup, record_mode):
        serial = build_serial(setup, ingress_mbps=0.05, record_mode=record_mode)
        controller = build_parallel(
            setup, ingress_mbps=0.05, record_mode=record_mode
        )
        with controller:
            for epoch in range(6):
                if epoch == 2:
                    serial_event = serial.migrate("source-0", 1)
                    parallel_event = controller.migrate("source-0", 1)
                    assert serial_event.moved_bytes == parallel_event.moved_bytes
                    assert (
                        serial_event.in_flight_records
                        == parallel_event.in_flight_records
                    )
                serial_epoch = serial.run_epoch()
                parallel_epoch = controller.run_epoch()
                assert serial_epoch == parallel_epoch
            assert serial.assignment() == controller.assignment()
            assert (
                serial.sp_backlog_records() == controller.sp_backlog_records()
            )
            assert controller.verify_record_conservation() == []
            assert (
                serial.record_conservation_report()
                == controller.record_conservation_report()
            )


class TestMigrationScheduleIdentityProperty:
    @settings(max_examples=5, deadline=None)
    @given(
        data=st.data(),
        num_sources=st.integers(min_value=2, max_value=5),
        num_blocks=st.integers(min_value=2, max_value=3),
        ingress=st.floats(min_value=0.005, max_value=2.0),
        record_mode=st.sampled_from(RECORD_MODES),
        workers=st.integers(min_value=2, max_value=3),
    )
    def test_identity_under_random_schedules(
        self, setup, data, num_sources, num_blocks, ingress, record_mode,
        workers,
    ):
        """Property (acceptance): random fleets under random live-migration
        schedules produce bit-identical per-epoch metrics from the worker
        pool and the serial lockstep, in every record mode."""
        kwargs = dict(
            num_sources=num_sources, num_blocks=num_blocks,
            ingress_mbps=ingress, record_mode=record_mode,
        )
        serial = build_serial(setup, **kwargs)
        with build_parallel(setup, workers=workers, **kwargs) as controller:
            for epoch in range(6):
                serial_epoch = serial.run_epoch()
                parallel_epoch = controller.run_epoch()
                assert serial_epoch == parallel_epoch
                if data.draw(st.booleans(), label=f"migrate@{epoch}"):
                    source = data.draw(
                        st.sampled_from(sorted(serial.assignment())),
                        label="source",
                    )
                    current = serial.block_of(source)
                    target = data.draw(
                        st.sampled_from(
                            [b for b in range(num_blocks) if b != current]
                        ),
                        label="target",
                    )
                    serial.migrate(source, target)
                    controller.migrate(source, target)
                    assert serial.assignment() == controller.assignment()
            assert controller.verify_record_conservation() == []
            assert (
                serial.record_conservation_report()
                == controller.record_conservation_report()
            )


# ---------------------------------------------------------------------------
# RNG independence: per-source streams never depend on worker count or
# block stepping order.
# ---------------------------------------------------------------------------


class TestRngIndependence:
    def test_worker_count_does_not_change_draws(self, setup):
        """Regression (satellite): after identical epochs, every source's
        RNG state is identical under workers=1 and workers=4 — per-source
        generators are seeded at construction, so stepping order and worker
        placement cannot leak into the draws."""
        states = {}
        for workers in (1, 4):
            with build_parallel(
                setup, num_sources=8, num_blocks=4, record_mode="arena",
                workers=workers,
            ) as controller:
                for _ in range(3):
                    controller.run_epoch()
                per_block = controller.map_blocks(_probe_rng)
            merged = {}
            for block_states in per_block.values():
                merged.update(block_states)
            states[workers] = merged
        assert set(states[1]) == set(states[4]) and len(states[1]) == 8
        assert states[1] == states[4]


# ---------------------------------------------------------------------------
# Shared-memory arenas.
# ---------------------------------------------------------------------------


class TestShmBumpAllocator:
    def test_alignment_and_exhaustion(self):
        shm = shared_memory.SharedMemory(
            name="repro_test_alloc", create=True, size=64
        )
        try:
            alloc = _ShmBumpAllocator(shm)
            small = alloc(3, np.int8)
            assert small is not None and small.nbytes == 3
            wide = alloc(4, np.int64)
            assert wide is not None
            # The second buffer starts on the next dtype-aligned offset.
            offset = wide.__array_interface__["data"][0] - (
                small.__array_interface__["data"][0]
            )
            assert offset == 8
            assert alloc(100, np.int64) is None  # exhausted -> decline
            del small, wide
        finally:
            shm.close()
            shm.unlink()

    def test_round_trip_through_second_attachment(self):
        """Writes through an allocator-carved view are visible to a second
        attachment of the same segment (the cross-process contract)."""
        shm = shared_memory.SharedMemory(
            name="repro_test_roundtrip", create=True, size=1024
        )
        try:
            view = _ShmBumpAllocator(shm)(4, np.int64)
            view[:] = [11, 22, 33, 44]
            other = shared_memory.SharedMemory(name="repro_test_roundtrip")
            try:
                mirrored = np.frombuffer(other.buf, dtype=np.int64, count=4)
                assert mirrored.tolist() == [11, 22, 33, 44]
                del mirrored
            finally:
                other.close()
            del view
        finally:
            shm.close()
            shm.unlink()
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name="repro_test_roundtrip")


class TestArenaOnSharedMemory:
    def arena_with_shm(self, size=1 << 16, name="repro_test_arena"):
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        arena = FleetArena()
        arena.set_buffer_allocator(_ShmBumpAllocator(shm))
        return shm, arena

    def test_reserve_alias_recycle_detach(self):
        shm, arena = self.arena_with_shm()
        try:
            dtypes = {"event_time": np.float64, "value": np.int64}
            arena.begin_epoch(0)
            views = arena.reserve(0, 8, tuple, dtypes, 16)
            assert views is not None
            # Reserved slices are views into the shm segment...  (generator
            # expressions on purpose: a loop variable would keep a view
            # alive in this frame and pin the segment at close time)
            assert all(
                isinstance(c.base.base, memoryview) for c in views.values()
            )
            assert all(arena.aliases(c) for c in views.values())
            views["value"][:] = np.arange(8)
            # ...recycling for a new epoch reuses the same buffers
            # (allocation-free steady state even on the shm path)...
            buffer_ids = {id(b) for b in arena._buffers.values()}
            arena.begin_epoch(1)
            views2 = arena.reserve(0, 8, tuple, dtypes, 16)
            assert {id(b) for b in arena._buffers.values()} == buffer_ids
            assert views2 is not None and arena.aliases(views2["value"])
            # ...and detaching the allocator sends future growth back to the
            # private heap without touching existing buffers.
            arena.set_buffer_allocator(None)
            arena.begin_epoch(2)
            grown = arena.reserve(0, 100_000, tuple, dtypes, 16)
            assert grown is not None
            assert grown["value"].base.base is None
            del views, views2, grown
        finally:
            del arena
            gc.collect()
            shm.close()
            shm.unlink()

    def test_exhausted_segment_falls_back_to_heap(self):
        shm, arena = self.arena_with_shm(size=128)
        try:
            arena.begin_epoch(0)
            views = arena.reserve(
                0, 4096, tuple, {"event_time": np.float64}, 8
            )
            # The segment cannot hold 4096 rows: the arena silently fell
            # back to heap buffers and stayed fully functional.
            assert views is not None
            assert views["event_time"].base.base is None
            del views
        finally:
            del arena
            gc.collect()
            shm.close()
            shm.unlink()

    def test_worker_columns_are_shm_backed_and_stay_recycled(self, setup):
        with build_parallel(
            setup, num_sources=4, num_blocks=2, record_mode="arena"
        ) as controller:
            assert len(controller.shared_segment_names()) == 2
            controller.run_epoch()
            first = controller.map_blocks(_probe_arena_shm)
            assert set(first) == {0, 1}
            for flags in first.values():
                assert flags and all(flags.values())
            for _ in range(4):
                controller.run_epoch()
            # Buffers recycled across epochs remain in shared memory.
            later = controller.map_blocks(_probe_arena_shm)
            for flags in later.values():
                assert flags and all(flags.values())

    def test_non_arena_modes_create_no_segments(self, setup):
        for record_mode in ("object", "batched"):
            with build_parallel(setup, record_mode=record_mode) as controller:
                assert controller.shared_segment_names() == []


# ---------------------------------------------------------------------------
# Lifecycle: idle blocks, drained blocks, teardown on error paths.
# ---------------------------------------------------------------------------


class TestIdleAndDrainedBlocks:
    def test_more_blocks_than_sources(self, setup):
        """Blocks with no sources are legitimate idle blocks in a worker:
        they step zero-byte epochs and the run matches serial exactly."""
        kwargs = dict(num_sources=3, num_blocks=5, record_mode="arena")
        serial_metrics = build_serial(setup, **kwargs).run(4, warmup_epochs=1)
        with build_parallel(setup, **kwargs) as controller:
            parallel_metrics = controller.run(4, warmup_epochs=1)
        assert_runs_identical(serial_metrics, parallel_metrics)
        assert serial_metrics.metadata == parallel_metrics.metadata

    def test_block_drained_by_migration_keeps_stepping(self, setup):
        serial = build_serial(setup, num_sources=4, num_blocks=2)
        controller = build_parallel(setup, num_sources=4, num_blocks=2)
        with controller:
            serial.run_epoch()
            controller.run_epoch()
            for name, block in sorted(controller.assignment().items()):
                if block == 0:
                    serial.migrate(name, 1)
                    controller.migrate(name, 1)
            assert controller.map_blocks(_probe_num_sources)[0] == 0
            for _ in range(3):
                assert serial.run_epoch() == controller.run_epoch()
            assert controller.verify_record_conservation() == []


class TestTeardown:
    def failing_controller(self, setup, record_mode="arena", fail_at=2):
        specs = homogeneous_sources(
            4,
            workload_factory=lambda i: _FailAfter(
                setup.workload_factory(10 + i), fail_at
            ),
            strategy_factory=lambda i: AllSPStrategy(),
            budget=1.0,
        )
        return ParallelBlockController(
            plan=setup.plan,
            cost_model=setup.cost_model,
            sources=specs,
            num_blocks=2,
            cluster_config=cluster_config(setup, record_mode=record_mode),
            workers=2,
        )

    @pytest.mark.parametrize("record_mode", RECORD_MODES)
    def test_error_mid_epoch_tears_everything_down(self, setup, record_mode):
        """A block raising SimulationError mid-epoch cancels the sibling
        futures, shuts the pools down, and unlinks every shm segment."""
        controller = self.failing_controller(setup, record_mode=record_mode)
        segments = controller.shared_segment_names()
        if record_mode == "arena":
            assert len(segments) == 2
            for name in segments:
                assert os.path.exists(f"/dev/shm/{name}")
        controller.run_epoch()  # epochs 0-1 are fine
        controller.run_epoch()
        with pytest.raises(SimulationError, match="injected mid-epoch"):
            controller.run_epoch()
        assert controller._closed
        assert controller._pools == []
        # Resource-tracker check: the segments are gone from /dev/shm and a
        # re-attach by name fails — nothing leaked for the tracker to nag
        # about at interpreter exit.
        for name in segments:
            assert not os.path.exists(f"/dev/shm/{name}")
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        with pytest.raises(SimulationError, match="closed"):
            controller.run_epoch()

    def test_close_is_idempotent_and_unlinks(self, setup):
        controller = build_parallel(setup, record_mode="arena")
        segments = controller.shared_segment_names()
        assert segments
        controller.close()
        controller.close()
        for name in segments:
            assert not os.path.exists(f"/dev/shm/{name}")

    def test_context_manager_closes_on_exception(self, setup):
        with pytest.raises(KeyError):
            with build_parallel(setup, record_mode="arena") as controller:
                segments = controller.shared_segment_names()
                raise KeyError("boom")
        assert controller._closed
        for name in segments:
            assert not os.path.exists(f"/dev/shm/{name}")

    def test_invalid_worker_count_rejected(self, setup):
        with pytest.raises(SimulationError):
            build_parallel(setup, workers=0)

    def test_run_requires_fresh_controller(self, setup):
        with build_parallel(setup) as controller:
            controller.run_epoch()
            with pytest.raises(SimulationError, match="fresh"):
                controller.run(3)


# ---------------------------------------------------------------------------
# Migration-state transport: the handoff pickles across workers.
# ---------------------------------------------------------------------------


class TestMigrationStateTransport:
    @pytest.mark.parametrize("record_mode", RECORD_MODES)
    def test_detached_state_survives_pickling(self, setup, record_mode):
        """detach -> pickle -> unpickle -> attach is lossless: the rebuilt
        run continues bit-identically to a twin that never detached."""
        twin = build_serial(setup, ingress_mbps=0.05, record_mode=record_mode)
        subject = build_serial(
            setup, ingress_mbps=0.05, record_mode=record_mode
        )
        for _ in range(3):
            twin.run_epoch()
            subject.run_epoch()
        block = subject.blocks[0]
        state = block.detach_source("source-0")
        restored = pickle.loads(pickle.dumps(state))
        assert restored.record_mode == record_mode
        assert restored.requeue_bytes == state.requeue_bytes
        assert restored.in_flight_records == state.in_flight_records
        block.attach_source(restored)
        for _ in range(3):
            assert twin.run_epoch() == subject.run_epoch()
        assert subject.verify_record_conservation() == []


# ---------------------------------------------------------------------------
# Runner/spec plumbing: the `workers` knob end to end.
# ---------------------------------------------------------------------------


class TestRunnerPlumbing:
    def test_run_sharded_workers_knob_is_bit_identical(self, setup):
        def run(workers):
            return run_sharded(
                setup, "Jarvis", 0.55, num_sources=6, num_blocks=3,
                num_epochs=5, warmup_epochs=1, seed=1, record_mode="arena",
                workers=workers,
            )

        serial_metrics = run(1)
        parallel_metrics = run(2)
        assert_runs_identical(serial_metrics, parallel_metrics)
        assert serial_metrics.metadata == parallel_metrics.metadata

    def test_spec_validates_workers(self):
        base = {
            "scenario": {"name": "x", "kind": "parallel"},
            "tiling": {"blocks": 4, "workers": 2},
        }
        spec = spec_from_dict(base)
        assert spec.tiling.workers == 2
        with pytest.raises(Exception, match="workers"):
            spec_from_dict(
                {
                    "scenario": {"name": "x", "kind": "parallel"},
                    "tiling": {"blocks": 4, "workers": 0},
                }
            )
        # kind "parallel" with the serial default is a configuration error:
        # there would be nothing to compare against.
        with pytest.raises(Exception, match="workers"):
            spec_from_dict({"scenario": {"name": "x", "kind": "parallel"}})

    def test_spec_plumbs_parallel_min_speedup(self):
        spec = spec_from_dict(
            {
                "scenario": {"name": "x", "kind": "parallel"},
                "run": {"parallel_min_speedup": 2.5},
                "tiling": {"blocks": 2, "workers": 2},
            }
        )
        assert spec.parallel_min_speedup == 2.5

    def test_make_strategy_fleet_matches_through_controller(self, setup):
        """The scenario-harness fleet construction (make_strategy) also
        produces bit-identical serial/parallel runs — the gate's exact
        code path at miniature scale."""
        def specs():
            return homogeneous_sources(
                4,
                workload_factory=lambda i: setup.workload_factory(1 + i),
                strategy_factory=lambda i: make_strategy(
                    "Jarvis", setup, 0.55
                ),
                budget=0.55,
            )

        config = cluster_config(setup, record_mode="arena")
        serial_metrics = ShardedClusterExecutor(
            plan=setup.plan, cost_model=setup.cost_model, sources=specs(),
            num_blocks=2, cluster_config=config,
        ).run(4, warmup_epochs=1)
        with ParallelBlockController(
            plan=setup.plan, cost_model=setup.cost_model, sources=specs(),
            num_blocks=2, cluster_config=config, workers=2,
        ) as controller:
            parallel_metrics = controller.run(4, warmup_epochs=1)
        assert_runs_identical(serial_metrics, parallel_metrics)
