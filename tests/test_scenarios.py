"""Tests for the declarative scenario harness (``repro.scenarios``).

Three layers are covered:

* **spec/loader** — dataclass validation, dict/TOML loading with strict
  unknown-key checking, ``--set`` override parsing and deep-merge, and the
  deprecated env-var aliases in :mod:`repro.scenarios.knobs`;
* **equivalence** — fixed-seed results must match the pre-refactor
  ``experiments`` functions bit for bit.  ``tests/data/scenario_golden.json``
  pins the numbers those functions produced *before* they became thin
  builders over :class:`ScenarioRunner`; both the refactored entry points and
  dict-config runs are checked against it;
* **reporting** — the text-table helpers (including the ``ratio(0, 0)`` and
  ``series_table`` ordering fixes) and the self-contained HTML report, with
  golden files for the BENCH JSON and REPORT HTML artifacts.
"""

from __future__ import annotations

import json
import math
import warnings
from pathlib import Path

import pytest

from repro.analysis.experiments import (
    max_supported_sources,
    multi_query_sweep,
    scaling_comparison,
)
from repro.analysis.reporting import (
    flatten_rows,
    format_table,
    ratio,
    render_chart,
    render_report,
    series_table,
    speedup_table,
    summarize_sweep,
)
from repro.errors import ConfigurationError
from repro.scenarios import (
    FleetSpec,
    HotspotSpec,
    MigrationSpec,
    ScenarioRunner,
    ScenarioSpec,
    SweepSpec,
    TilingSpec,
    WorkloadSpec,
    apply_overrides,
    load_scenario,
    parse_override,
    spec_from_dict,
)
from repro.scenarios import loader as scenario_loader
from repro.scenarios.knobs import (
    FIG10_MIGRATION_ALIASES,
    RECMODE_ALIASES,
    deprecated_env_overrides,
)

DATA_DIR = Path(__file__).resolve().parent / "data"

requires_tomllib = pytest.mark.skipif(
    scenario_loader.tomllib is None, reason="tomllib needs Python >= 3.11"
)


@pytest.fixture(scope="module")
def golden():
    return json.loads((DATA_DIR / "scenario_golden.json").read_text())


# ---------------------------------------------------------------------------
# Spec validation.
# ---------------------------------------------------------------------------


class TestSpecValidation:
    def test_minimal_spec_defaults(self):
        spec = ScenarioSpec(name="s", kind="scaling")
        assert spec.mode == "simulated"
        assert spec.record_mode == "batched"
        assert spec.enabled is True
        assert spec.fleet.strategy == "Jarvis"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"kind": "quantum"},
            {"mode": "oracle"},
            {"record_mode": "columnar"},
            {"epochs": 0},
            {"warmup_epochs": 25},  # == default epochs: warmup must be inside
            {"max_sources_limit": -1},
            {"min_speedup": float("nan")},
        ],
    )
    def test_bad_top_level_knobs(self, kwargs):
        base = {"name": "s", "kind": "scaling"}
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(**base)

    def test_dynamic_replacement_requires_hotspot(self):
        with pytest.raises(ConfigurationError, match="hotspot"):
            ScenarioSpec(name="s", kind="dynamic_replacement")

    def test_hotspot_factor_must_amplify(self):
        with pytest.raises(ConfigurationError):
            HotspotSpec(shift_epoch=4, factor=0.5)
        with pytest.raises(ConfigurationError):
            HotspotSpec(shift_epoch=-1)

    def test_migration_policy_names(self):
        assert MigrationSpec(policy="never").policy == "never"
        with pytest.raises(ConfigurationError):
            MigrationSpec(policy="sometimes")

    def test_sweep_axes_positive(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(sources=(1, 0))
        with pytest.raises(ConfigurationError):
            SweepSpec(budgets=(0.5, float("inf")))

    def test_static_placement_needs_map(self):
        with pytest.raises(ConfigurationError, match="placement_map"):
            TilingSpec(placement="static")
        tiling = TilingSpec(placement="static", placement_map={"src-0": 1})
        assert tiling.placement_arg() == {"src-0": 1}

    def test_budget_schedule_validation(self):
        fleet = FleetSpec(budget=((0, 0.3), (10, 0.6)))
        assert fleet.budget_schedule().budget_at(12) == 0.6
        with pytest.raises(ConfigurationError):
            FleetSpec(budget=())
        with pytest.raises(ConfigurationError):
            FleetSpec(budget=((0, float("nan")),))

    def test_resolved_warmup_defaults(self):
        steady = ScenarioSpec(name="s", kind="scaling", epochs=25)
        assert steady.resolved_warmup() == 8  # max(2, 25 // 3)
        timing = ScenarioSpec(name="s", kind="record_modes", epochs=12)
        assert timing.resolved_warmup() == 3  # max(1, 12 // 4)
        dynamic = ScenarioSpec(
            name="s",
            kind="dynamic_replacement",
            workload=WorkloadSpec(hotspot=HotspotSpec(shift_epoch=7)),
            epochs=30,
        )
        assert dynamic.resolved_warmup() == 7  # the hotspot's shift epoch
        explicit = ScenarioSpec(name="s", kind="scaling", epochs=25, warmup_epochs=1)
        assert explicit.resolved_warmup() == 1

    def test_with_overrides_revalidates(self):
        spec = ScenarioSpec(name="s", kind="scaling")
        assert spec.with_overrides(epochs=9).epochs == 9
        with pytest.raises(ConfigurationError):
            spec.with_overrides(epochs=0)


# ---------------------------------------------------------------------------
# Dict/TOML loading.
# ---------------------------------------------------------------------------


class TestLoader:
    def test_minimal_dict(self):
        spec = spec_from_dict({"scenario": {"name": "x", "kind": "scaling"}})
        assert spec.name == "x"
        assert spec.workload.query == "s2s_probe"

    def test_scenario_must_declare_name_and_kind(self):
        with pytest.raises(ConfigurationError, match="'name' and 'kind'"):
            spec_from_dict({"scenario": {"name": "x"}})

    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown section"):
            spec_from_dict(
                {"scenario": {"name": "x", "kind": "scaling"}, "cluster": {}}
            )

    def test_unknown_key_reports_dotted_path(self):
        with pytest.raises(ConfigurationError, match=r"run\.'epoch'"):
            spec_from_dict(
                {"scenario": {"name": "x", "kind": "scaling"}, "run": {"epoch": 9}}
            )

    def test_hotspot_requires_shift_epoch(self):
        with pytest.raises(ConfigurationError, match="shift_epoch"):
            spec_from_dict(
                {
                    "scenario": {"name": "x", "kind": "dynamic_replacement"},
                    "workload": {"hotspot": {"factor": 2.0}},
                }
            )

    def test_numeric_coercion_accepts_strings(self):
        spec = spec_from_dict(
            {
                "scenario": {"name": "x", "kind": "scaling"},
                "run": {"epochs": "8"},
                "workload": {"rate_scale": "0.5"},
                "fleet": {"sources": 4.0},
            }
        )
        assert spec.epochs == 8
        assert spec.workload.rate_scale == 0.5
        assert spec.fleet.sources == 4

    @pytest.mark.parametrize(
        "run",
        [{"epochs": 8.5}, {"epochs": True}, {"epochs": "eight"}, {"epochs": None}],
    )
    def test_non_integer_epochs_rejected(self, run):
        data = {"scenario": {"name": "x", "kind": "scaling"}, "run": run}
        with pytest.raises(ConfigurationError):
            spec_from_dict(data)

    def test_boolean_coercion(self):
        for raw, expected in (("no", False), ("on", True), (0, False), (True, True)):
            spec = spec_from_dict(
                {"scenario": {"name": "x", "kind": "scaling", "enabled": raw}}
            )
            assert spec.enabled is expected
        with pytest.raises(ConfigurationError):
            spec_from_dict(
                {"scenario": {"name": "x", "kind": "scaling", "enabled": "maybe"}}
            )

    def test_scalar_axes_promote_to_tuples(self):
        spec = spec_from_dict(
            {
                "scenario": {"name": "x", "kind": "scaling"},
                "sweep": {"sources": 4, "strategies": "Jarvis"},
            }
        )
        assert spec.sweep.sources == (4,)
        assert spec.sweep.strategies == ("Jarvis",)

    def test_budget_schedule_from_pairs(self):
        spec = spec_from_dict(
            {
                "scenario": {"name": "x", "kind": "scaling"},
                "fleet": {"budget": [[0, 0.3], [10, 0.6]]},
            }
        )
        assert spec.fleet.budget == ((0, 0.3), (10, 0.6))
        with pytest.raises(ConfigurationError, match="pairs"):
            spec_from_dict(
                {
                    "scenario": {"name": "x", "kind": "scaling"},
                    "fleet": {"budget": [[0, 0.3, 1.0]]},
                }
            )

    @requires_tomllib
    def test_toml_round_trip(self, tmp_path):
        config = tmp_path / "s.toml"
        config.write_text(
            "[scenario]\n"
            'name = "toml_case"\n'
            'kind = "sharded"\n'
            "[fleet]\n"
            "sources = 4\n"
            "[sweep]\n"
            "blocks = [1, 2]\n"
        )
        spec = load_scenario(config)
        assert spec.name == "toml_case"
        assert spec.sweep.blocks == (1, 2)

    @requires_tomllib
    def test_invalid_toml_reports_path(self, tmp_path):
        config = tmp_path / "broken.toml"
        config.write_text("[scenario\n")
        with pytest.raises(ConfigurationError, match="invalid TOML"):
            load_scenario(config)

    def test_missing_file_is_configuration_error(self):
        if scenario_loader.tomllib is None:
            with pytest.raises(ConfigurationError, match="tomllib"):
                load_scenario("no/such/scenario.toml")
        else:
            with pytest.raises(ConfigurationError, match="cannot read"):
                load_scenario("no/such/scenario.toml")


class TestOverrides:
    def test_parse_scalar_coercion(self):
        assert parse_override("run.epochs=8") == (("run", "epochs"), 8)
        assert parse_override("run.min_speedup=5.0") == (("run", "min_speedup"), 5.0)
        assert parse_override("scenario.enabled=false") == (
            ("scenario", "enabled"),
            False,
        )
        assert parse_override("workload.query=s2s_probe") == (
            ("workload", "query"),
            "s2s_probe",
        )

    def test_parse_lists_and_deep_paths(self):
        assert parse_override("sweep.sources=1,2,4") == (
            ("sweep", "sources"),
            [1, 2, 4],
        )
        assert parse_override("workload.hotspot.shift_epoch=4") == (
            ("workload", "hotspot", "shift_epoch"),
            4,
        )

    @pytest.mark.parametrize("entry", ["epochs8", "epochs=8", ".x=1", "a..b=1"])
    def test_malformed_overrides_rejected(self, entry):
        with pytest.raises(ConfigurationError):
            parse_override(entry)

    def test_apply_overrides_is_a_deep_copy(self):
        data = {"scenario": {"name": "x", "kind": "scaling"}, "run": {"epochs": 3}}
        merged = apply_overrides(data, ["run.epochs=9", "fleet.sources=2"])
        assert merged["run"]["epochs"] == 9
        assert merged["fleet"] == {"sources": 2}
        assert data["run"]["epochs"] == 3  # input untouched
        assert "fleet" not in data

    def test_override_through_scalar_rejected(self):
        with pytest.raises(ConfigurationError, match="non-table"):
            apply_overrides({"run": {"epochs": 3}}, ["run.epochs.x=1"])

    def test_overrides_validate_like_file_values(self):
        data = {"scenario": {"name": "x", "kind": "scaling"}}
        assert load_scenario(data, overrides=["run.epochs=9"]).epochs == 9
        assert load_scenario(data, overrides=["scenario.enabled=false"]).enabled is False
        with pytest.raises(ConfigurationError, match="unknown key"):
            load_scenario(data, overrides=["run.bogus=1"])


class TestDeprecatedEnvAliases:
    def test_hits_translate_and_warn(self):
        env = {"RECMODE_EPOCHS": "9", "RECMODE_SOURCES": "12", "UNRELATED": "1"}
        with pytest.warns(DeprecationWarning) as captured:
            overrides = deprecated_env_overrides(RECMODE_ALIASES, env=env)
        assert overrides == ["run.epochs=9", "fleet.sources=12"]
        messages = [str(w.message) for w in captured]
        assert len(messages) == 2
        assert any("--set run.epochs=9" in m for m in messages)

    def test_boolean_path_normalizes_legacy_spellings(self):
        for raw, expected in (("0", "false"), ("no", "false"), ("1", "true")):
            with pytest.warns(DeprecationWarning):
                overrides = deprecated_env_overrides(
                    FIG10_MIGRATION_ALIASES, env={"FIG10_MIGRATION": raw}
                )
            assert overrides == [f"scenario.enabled={expected}"]

    def test_empty_env_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert deprecated_env_overrides(RECMODE_ALIASES, env={}) == []

    def test_alias_overrides_drive_the_loader(self):
        with pytest.warns(DeprecationWarning):
            overrides = deprecated_env_overrides(
                FIG10_MIGRATION_ALIASES, env={"FIG10_MIGRATION": "0"}
            )
        spec = load_scenario(
            {
                "scenario": {"name": "x", "kind": "dynamic_replacement"},
                "workload": {"hotspot": {"shift_epoch": 4}},
            },
            overrides=overrides,
        )
        assert spec.enabled is False


# ---------------------------------------------------------------------------
# Fixed-seed equivalence with the pre-refactor experiments functions.
# ---------------------------------------------------------------------------


def _tiny_comparison_dict():
    return {
        "scenario": {"name": "tiny_comparison", "kind": "scaling", "mode": "comparison"},
        "run": {"epochs": 8, "warmup_epochs": 2, "record_mode": "batched"},
        "workload": {"records_per_epoch": 120},
        "fleet": {"budget": 0.55},
        "sweep": {"sources": [1, 2], "strategies": ["Jarvis"]},
    }


@pytest.fixture(scope="module")
def tiny_comparison_result():
    return ScenarioRunner().run(load_scenario(_tiny_comparison_dict()))


class TestGoldenEquivalence:
    """Every scenario kind reproduces the pre-refactor numbers exactly."""

    def test_scaling_comparison_via_config(self, golden, tiny_comparison_result):
        assert tiny_comparison_result.raw == golden["scaling_comparison"]

    def test_scaling_comparison_via_experiments(self, golden):
        got = scaling_comparison(
            rate_scale=1.0,
            cpu_budget=0.55,
            node_counts=(1, 2),
            strategies=("Jarvis",),
            records_per_epoch=120,
            num_epochs=8,
            warmup_epochs=2,
            record_mode="batched",
        )
        assert got == golden["scaling_comparison"]

    def test_scaling_analytic_sweep(self, golden):
        spec = load_scenario(
            {
                "scenario": {"name": "g", "kind": "scaling", "mode": "analytic"},
                "run": {"epochs": 8, "warmup_epochs": 2, "max_sources_limit": 0},
                "workload": {"records_per_epoch": 120},
                "fleet": {"budget": 0.55},
                "sweep": {"sources": [1, 4], "strategies": ["Jarvis", "Best-OP"]},
            }
        )
        raw = ScenarioRunner().run(spec).raw
        for strategy, entries in golden["scaling_sweep"].items():
            for want, got in zip(entries, raw["sweep"][strategy]):
                for key, value in want.items():
                    assert getattr(got, key) == value, (strategy, key)

    def test_max_supported_sources(self, golden):
        spec = load_scenario(
            {
                "scenario": {"name": "g", "kind": "scaling", "mode": "analytic"},
                "run": {"epochs": 8, "warmup_epochs": 2, "max_sources_limit": 64},
                "workload": {"records_per_epoch": 120},
                "fleet": {"budget": 0.55},
                "sweep": {"strategies": ["Jarvis", "Best-OP"]},
            }
        )
        raw = ScenarioRunner().run(spec).raw
        assert raw["supported"] == golden["max_supported_sources"]
        # The refactored experiments entry point goes through the same runner.
        assert (
            max_supported_sources(
                rate_scale=1.0, cpu_budget=0.55, records_per_epoch=120, limit=64
            )
            == golden["max_supported_sources"]
        )

    def test_simulated_scaling_sweep(self, golden):
        spec = load_scenario(
            {
                "scenario": {"name": "g", "kind": "scaling", "mode": "simulated"},
                "run": {"epochs": 8, "warmup_epochs": 2, "record_mode": "batched"},
                "workload": {"records_per_epoch": 120},
                "fleet": {"budget": 0.55},
                "sweep": {"sources": [1, 2], "strategies": ["Best-OP"]},
            }
        )
        raw = ScenarioRunner().run(spec).raw
        for want, got in zip(golden["simulated_scaling_sweep"]["Best-OP"], raw["Best-OP"]):
            summary = got.summary()
            for key, value in want.items():
                assert summary[key] == value, key

    def test_sharded_scaling_sweep(self, golden):
        spec = load_scenario(
            {
                "scenario": {"name": "g", "kind": "sharded"},
                "run": {"epochs": 8, "warmup_epochs": 2, "record_mode": "batched"},
                "workload": {"records_per_epoch": 120},
                "fleet": {"sources": 4, "budget": 0.55},
                "sweep": {"blocks": [1, 2], "strategies": ["Jarvis"]},
            }
        )
        raw = ScenarioRunner().run(spec).raw
        for want, got in zip(golden["sharded_scaling_sweep"]["Jarvis"], raw["Jarvis"]):
            summary = got.summary()
            for key, value in want.items():
                assert summary[key] == value, key

    def test_dynamic_replacement(self, golden):
        spec = load_scenario(
            {
                "scenario": {"name": "g", "kind": "dynamic_replacement"},
                "run": {"epochs": 16, "record_mode": "batched"},
                "workload": {
                    "records_per_epoch": 150,
                    "hotspot": {"shift_epoch": 4},
                },
                "fleet": {"sources": 8, "budget": 1.0, "strategy": "All-SP"},
                "tiling": {"blocks": 2},
            }
        )
        raw = ScenarioRunner().run(spec).raw
        want = golden["dynamic_replacement_sweep"]
        assert raw["static_mbps"] == want["static_mbps"]
        assert raw["dynamic_mbps"] == want["dynamic_mbps"]
        assert raw["oracle_mbps"] == want["oracle_mbps"]
        assert raw["gap_recovered"] == want["gap_recovered"]
        assert len(raw["migrations"]) == want["num_migrations"]
        assert raw["scenario"]["ingress_mbps"] == want["scenario_ingress_mbps"]

    def test_colocated_analytic(self, golden):
        spec = load_scenario(
            {
                "scenario": {"name": "g", "kind": "colocated", "mode": "analytic"},
                "run": {"epochs": 8, "warmup_epochs": 2},
                "workload": {"records_per_epoch": 100},
                "fleet": {"cores": 1},
                "sweep": {"queries": [1, 2]},
            }
        )
        assert ScenarioRunner().run(spec).raw == golden["multi_query_sweep"]
        assert (
            multi_query_sweep(
                rate_scale=1.0,
                cores=1,
                query_counts=(1, 2),
                records_per_epoch=100,
                num_epochs=8,
                warmup_epochs=2,
            )
            == golden["multi_query_sweep"]
        )

    def test_colocated_comparison(self, golden):
        spec = load_scenario(
            {
                "scenario": {"name": "g", "kind": "colocated", "mode": "comparison"},
                "run": {"epochs": 8, "warmup_epochs": 2, "record_mode": "batched"},
                "workload": {"records_per_epoch": 100},
                "fleet": {"cores": 1},
                "sweep": {"queries": [1, 2]},
            }
        )
        assert ScenarioRunner().run(spec).raw == golden["multi_query_colocation_sweep"]

    def test_record_modes(self, golden):
        spec = load_scenario(
            {
                "scenario": {"name": "g", "kind": "record_modes"},
                "run": {"epochs": 8, "warmup_epochs": 2},
                "workload": {"records_per_epoch": 200},
                "fleet": {"sources": 4, "budget": 0.55},
            }
        )
        raw = ScenarioRunner().run(spec).raw
        for strategy, want in golden["record_modes"].items():
            got = raw[strategy]
            for mode in ("object", "batched"):
                assert got[f"{mode}_goodput_mbps"] == want[mode]["goodput_mbps"]
                assert (
                    got[f"{mode}_median_latency_s"] == want[mode]["median_latency_s"]
                )
            assert got["offered_mbps"] == want["object"]["offered_mbps"]


# ---------------------------------------------------------------------------
# Text-table reporting helpers.
# ---------------------------------------------------------------------------


class TestRatio:
    def test_zero_over_zero_is_nan_not_inf(self):
        assert math.isnan(ratio(0.0, 0.0))
        assert math.isnan(ratio(float("nan"), 0.0))

    def test_signed_infinity_over_zero(self):
        assert ratio(2.0, 0.0) == float("inf")
        assert ratio(-2.0, 0.0) == float("-inf")

    def test_plain_division(self):
        assert ratio(6.0, 3.0) == 2.0


class TestTables:
    def test_format_table_needs_headers(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError, match="2 cells"):
            format_table(["a", "b", "c"], [[1, 2]])

    def test_format_table_formats_floats(self):
        table = format_table(["x"], [[float("nan")], [1234.5], [0.12345]])
        lines = table.splitlines()
        assert lines[2].strip() == "nan"
        assert lines[3].strip() == "1,234"  # thousands grouping, no decimals
        assert lines[4].strip() == "0.123"

    def test_series_table_sorts_the_shared_axis(self):
        table = series_table({"b": {4: 1.0, 1: 2.0}, "a": {2: 3.0}}, x_label="n")
        first_column = [line.split("|")[0].strip() for line in table.splitlines()[2:]]
        assert first_column == ["1", "2", "4"]
        assert "nan" in table  # missing (series, x) points render as nan

    def test_series_table_keeps_insertion_order_for_mixed_axes(self):
        table = series_table({"s": {1: 1.0, "a": 2.0}})
        first_column = [line.split("|")[0].strip() for line in table.splitlines()[2:]]
        assert first_column == ["1", "a"]

    def test_series_table_needs_a_series(self):
        with pytest.raises(ConfigurationError):
            series_table({})

    def test_summarize_sweep_missing_metric_is_nan(self):
        sweep = {"A": {0.5: {"throughput_mbps": 2.0}}}
        out = summarize_sweep(sweep, metric="latency_s")
        assert math.isnan(out["A"][0.5])

    def test_speedup_table_relative_to_reference(self):
        sweep = {
            "A": {0.5: {"throughput_mbps": 2.0}},
            "B": {0.5: {"throughput_mbps": 1.0}},
        }
        table = speedup_table(sweep, reference="B")
        assert "2.000" in table
        with pytest.raises(ConfigurationError, match="reference"):
            speedup_table(sweep, reference="C")

    def test_flatten_rows_projects_columns(self):
        rows = flatten_rows([{"a": 1, "b": 2}, {"a": 3}], columns=["a", "b"])
        assert rows == [[1, 2], [3, ""]]


# ---------------------------------------------------------------------------
# Self-contained HTML reports.
# ---------------------------------------------------------------------------


class TestHtmlReport:
    def test_title_and_headings_required(self):
        with pytest.raises(ConfigurationError, match="title"):
            render_report("", [])
        with pytest.raises(ConfigurationError, match="heading"):
            render_report("t", [{"body": "text"}])

    def test_markup_is_escaped(self):
        html = render_report(
            "<script>alert(1)</script>",
            [{"heading": "a & b", "body": "<pre> injection"}],
        )
        assert "<script>" not in html
        assert "&lt;script&gt;alert(1)&lt;/script&gt;" in html
        assert "a &amp; b" in html

    def test_chart_skips_non_finite_points(self):
        html = render_chart({"s": {1: float("nan"), 2: float("inf")}})
        assert html == "<p><em>(no plottable data)</em></p>"

    def test_chart_draws_lines_points_and_legend(self):
        html = render_chart({"jarvis": {1: 1.0, 2: 4.0}}, x_label="n", y_label="mbps")
        assert "<polyline" in html
        assert "<circle" in html
        assert ">jarvis</text>" in html
        assert ">n</text>" in html and ">mbps</text>" in html

    def test_single_point_series_has_no_line(self):
        html = render_chart({"s": {3: 1.5}})
        assert "<polyline" not in html
        assert "<circle" in html

    def test_report_is_self_contained(self, tiny_comparison_result):
        html = tiny_comparison_result.render_report()
        assert html.startswith("<!DOCTYPE html>")
        # No external assets: nothing fetched, nothing executed.  (The SVG
        # xmlns URL is a namespace identifier, not a resource reference.)
        for marker in ("<link", "<script", "src=", "href="):
            assert marker not in html, marker
        assert "Scenario: tiny_comparison" in html
        assert "kind=scaling mode=comparison" in html

    def test_report_html_matches_golden(self, tiny_comparison_result):
        golden_html = (DATA_DIR / "report_golden.html").read_text()
        assert tiny_comparison_result.render_report() == golden_html

    def test_bench_json_matches_golden(self, tiny_comparison_result):
        want = json.loads((DATA_DIR / "bench_golden.json").read_text())
        result = tiny_comparison_result
        payload = {
            "name": result.spec.name,
            "table": result.table,
            **result.bench_payload(),
        }
        assert json.loads(json.dumps(payload, sort_keys=True, default=str)) == want

    def test_write_emits_report_file(self, tiny_comparison_result, tmp_path):
        path = tiny_comparison_result.write(tmp_path / "out")
        assert path == tmp_path / "out" / "REPORT_tiny_comparison.html"
        assert path.read_text() == tiny_comparison_result.render_report()


# ---------------------------------------------------------------------------
# CLI entry point.
# ---------------------------------------------------------------------------


@requires_tomllib
class TestCli:
    def _write_config(self, tmp_path):
        config = tmp_path / "cli_case.toml"
        config.write_text(
            "[scenario]\n"
            'name = "cli_case"\n'
            'kind = "scaling"\n'
            'mode = "comparison"\n'
            "[run]\n"
            "epochs = 4\n"
            "warmup_epochs = 1\n"
            "[workload]\n"
            "records_per_epoch = 60\n"
            "[sweep]\n"
            "sources = [1]\n"
            'strategies = ["Jarvis"]\n'
        )
        return config

    def test_cli_writes_bench_and_report(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        out_dir = tmp_path / "out"
        code = main(
            [
                str(self._write_config(tmp_path)),
                "--set",
                "run.epochs=5",
                "--out",
                str(out_dir),
            ]
        )
        assert code == 0
        bench = json.loads((out_dir / "BENCH_cli_case.json").read_text())
        assert bench["config"]["num_epochs"] == 5  # the --set override landed
        html = (out_dir / "REPORT_cli_case.html").read_text()
        assert "Scenario: cli_case" in html
        assert "sources" in capsys.readouterr().out

    def test_cli_skips_disabled_scenarios(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        out_dir = tmp_path / "out"
        code = main(
            [
                str(self._write_config(tmp_path)),
                "--set",
                "scenario.enabled=false",
                "--out",
                str(out_dir),
            ]
        )
        assert code == 0
        assert not out_dir.exists()
        assert "disabled" in capsys.readouterr().out
