"""Unit tests for the operator cost model and its calibration helper."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.query.builder import s2s_probe_query, t2t_probe_query
from repro.query.operators import FilterOperator, MapOperator
from repro.query.records import IpToTorTable
from repro.simulation.cost_model import (
    CostModel,
    OperatorCostSpec,
    calibrate_cost_model,
)
from repro.workloads.pingmesh import s2s_cost_model, t2t_cost_model


class TestOperatorCostSpec:
    def test_rejects_negative_cost(self):
        with pytest.raises(ConfigurationError):
            OperatorCostSpec(cpu_per_record=-1.0)

    def test_rejects_bad_ref_table_size(self):
        with pytest.raises(ConfigurationError):
            OperatorCostSpec(cpu_per_record=1.0, ref_table_size=0)


class TestCostModelLookup:
    def test_kind_defaults_apply(self):
        model = CostModel()
        cheap = FilterOperator("f", lambda r: True)
        expensive = MapOperator("m", lambda r: r)
        assert model.cost_per_record(cheap) > 0
        assert model.cost_per_record(expensive) > model.cost_per_record(cheap)

    def test_name_spec_overrides_kind(self):
        model = CostModel()
        model.set_operator_spec("f", OperatorCostSpec(cpu_per_record=42.0))
        op = FilterOperator("f", lambda r: True)
        assert model.cost_per_record(op) == pytest.approx(42.0)

    def test_cost_hint_scales_cost(self):
        model = CostModel()
        cheap = MapOperator("a", lambda r: r, cost_hint=1.0)
        pricey = MapOperator("b", lambda r: r, cost_hint=3.0)
        assert model.cost_per_record(pricey) == pytest.approx(
            3.0 * model.cost_per_record(cheap)
        )

    def test_batch_cost_scales_linearly(self):
        model = CostModel()
        op = FilterOperator("f", lambda r: True)
        assert model.batch_cost(op, 100) == pytest.approx(100 * model.cost_per_record(op))

    def test_batch_cost_rejects_negative_count(self):
        with pytest.raises(ConfigurationError):
            CostModel().batch_cost(FilterOperator("f", lambda r: True), -1)

    def test_window_is_free_by_default(self):
        query = s2s_probe_query()
        assert CostModel().cost_per_record(query.operators[0]) == 0.0


class TestContextDependentCosts:
    def test_join_cost_grows_with_table_size(self):
        small_table = IpToTorTable.dense(500)
        big_table = IpToTorTable.dense(5000)
        query_small = t2t_probe_query(table=small_table)
        model = t2t_cost_model(query_small)
        join = query_small.logical_plan().operators[2]
        cost_small = model.cost_per_record(join)
        join.table = big_table
        cost_big = model.cost_per_record(join)
        assert cost_big > cost_small

    def test_group_cost_term_grows_with_group_count(self):
        model = CostModel()
        query = s2s_probe_query()
        gr = query.operators[2]
        base = model.cost_per_record(gr)
        from repro.query.records import PingmeshRecord

        gr.process([PingmeshRecord(0.0, 1, i, 1.0) for i in range(1000)])
        assert model.cost_per_record(gr) > base


class TestCalibration:
    def test_s2s_calibration_matches_paper_fractions(self):
        """At the reference rate the paper's CPU percentages must hold."""
        rate = 1000.0
        query = s2s_probe_query()
        model = s2s_cost_model(query, reference_records_per_second=rate)
        operators = query.logical_plan().operators
        window, filt, gr = operators
        assert model.cost_per_record(window) == 0.0
        # Filter: 13% of a core when processing the full input rate.
        assert model.cost_per_record(filt) * rate == pytest.approx(0.13, rel=0.01)
        # G+R: 80% of a core when processing all of the filter's output (86%).
        assert model.cost_per_record(gr) * rate * 0.86 == pytest.approx(0.80, rel=0.01)

    def test_full_query_cost_near_93_percent(self):
        rate = 1000.0
        query = s2s_probe_query()
        model = s2s_cost_model(query, reference_records_per_second=rate)
        operators = query.logical_plan().operators
        full = model.pipeline_full_cost_fraction(operators, rate, [1.0, 0.86, 0.3])
        assert full == pytest.approx(0.93, rel=0.02)

    def test_t2t_query_exceeds_one_core(self):
        """The paper notes T2TProbe needs more than one core end to end."""
        rate = 1000.0
        table = IpToTorTable.dense(500)
        query = t2t_probe_query(table=table)
        model = t2t_cost_model(query, reference_records_per_second=rate, table=table)
        operators = query.logical_plan().operators
        full = model.pipeline_full_cost_fraction(
            operators, rate, [1.0, 0.86, 1.0, 1.0, 0.1]
        )
        assert full > 1.0

    def test_calibrate_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            calibrate_cost_model([], {}, input_records_per_second=0.0)

    def test_pipeline_full_cost_validates_lengths(self):
        model = CostModel()
        with pytest.raises(ConfigurationError):
            model.pipeline_full_cost_fraction(
                [FilterOperator("f", lambda r: True)], 100.0, [1.0, 0.5]
            )

    def test_calibration_scale_invariance(self):
        """Costs calibrate per record: halving the rate halves per-epoch cost."""
        query = s2s_probe_query()
        model = s2s_cost_model(query, reference_records_per_second=1000.0)
        filt = query.logical_plan().operators[1]
        per_record = model.cost_per_record(filt)
        assert per_record * 500.0 == pytest.approx(0.065, rel=0.01)
